#include <gtest/gtest.h>

#include "db/database.h"

namespace cwf::db {
namespace {

std::unique_ptr<Table> MakeTable() {
  auto t = std::make_unique<Table>(
      "t", Schema({{"id", ColumnType::kInt64},
                   {"seg", ColumnType::kInt64},
                   {"v", ColumnType::kDouble}}));
  return t;
}

TEST(TableTest, InsertAndCount) {
  auto t = MakeTable();
  EXPECT_EQ(t->RowCount(), 0u);
  ASSERT_TRUE(t->Insert({Value(1), Value(10), Value(1.5)}).ok());
  ASSERT_TRUE(t->Insert({Value(2), Value(20), Value(2.5)}).ok());
  EXPECT_EQ(t->RowCount(), 2u);
}

TEST(TableTest, InsertRejectsBadRows) {
  auto t = MakeTable();
  EXPECT_FALSE(t->Insert({Value(1)}).ok());
  EXPECT_FALSE(t->Insert({Value("x"), Value(1), Value(2.0)}).ok());
}

TEST(TableTest, SelectWithPredicate) {
  auto t = MakeTable();
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(t->Insert({Value(i), Value(i % 3), Value(i * 1.0)}).ok());
  }
  auto rows = t->Select(Eq("seg", Value(1)));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 3u);  // ids 1, 4, 7
  auto all = t->Select(True());
  EXPECT_EQ(all.value().size(), 10u);
  auto none = t->Select(Eq("seg", Value(99)));
  EXPECT_TRUE(none.value().empty());
}

TEST(TableTest, SelectOneReturnsFirstMatch) {
  auto t = MakeTable();
  ASSERT_TRUE(t->Insert({Value(1), Value(5), Value(1.0)}).ok());
  ASSERT_TRUE(t->Insert({Value(2), Value(5), Value(2.0)}).ok());
  auto one = t->SelectOne(Eq("seg", Value(5)));
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(one.value().has_value());
  auto missing = t->SelectOne(Eq("seg", Value(9)));
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing.value().has_value());
}

TEST(TableTest, UpdateMutatesMatchingRows) {
  auto t = MakeTable();
  for (int64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(t->Insert({Value(i), Value(0), Value(0.0)}).ok());
  }
  auto n = t->Update(Lt("id", Value(2)),
                     [](Row* row) { (*row)[2] = Value(9.0); });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 2u);
  auto nine = t->Select(Eq("v", Value(9.0)));
  EXPECT_EQ(nine.value().size(), 2u);
}

TEST(TableTest, DeleteRemovesAndReusesSlots) {
  auto t = MakeTable();
  for (int64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(t->Insert({Value(i), Value(0), Value(0.0)}).ok());
  }
  auto n = t->Delete(Ge("id", Value(3)));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 2u);
  EXPECT_EQ(t->RowCount(), 3u);
  // Freed slots get reused by new inserts.
  ASSERT_TRUE(t->Insert({Value(100), Value(1), Value(1.0)}).ok());
  EXPECT_EQ(t->RowCount(), 4u);
  EXPECT_EQ(t->Select(True()).value().size(), 4u);
}

TEST(TableTest, UpsertInsertsThenReplaces) {
  auto t = MakeTable();
  auto r1 = t->Upsert({"id"}, {Value(1), Value(10), Value(1.0)});
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1.value());  // inserted
  auto r2 = t->Upsert({"id"}, {Value(1), Value(20), Value(2.0)});
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2.value());  // replaced
  EXPECT_EQ(t->RowCount(), 1u);
  auto row = t->SelectOne(Eq("id", Value(1))).value();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[1].AsInt(), 20);
}

TEST(TableTest, UpsertCompositeKey) {
  auto t = MakeTable();
  ASSERT_TRUE(t->Upsert({"id", "seg"}, {Value(1), Value(1), Value(1.0)}).ok());
  ASSERT_TRUE(t->Upsert({"id", "seg"}, {Value(1), Value(2), Value(2.0)}).ok());
  EXPECT_EQ(t->RowCount(), 2u);  // different composite keys
  ASSERT_TRUE(t->Upsert({"id", "seg"}, {Value(1), Value(2), Value(9.0)}).ok());
  EXPECT_EQ(t->RowCount(), 2u);
}

TEST(TableTest, UniqueIndexRejectsDuplicates) {
  auto t = MakeTable();
  ASSERT_TRUE(t->CreateIndex("pk", {"id"}, /*unique=*/true).ok());
  ASSERT_TRUE(t->Insert({Value(1), Value(0), Value(0.0)}).ok());
  auto dup = t->Insert({Value(1), Value(1), Value(1.0)});
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(TableTest, IndexBackfillAndUniquenessCheck) {
  auto t = MakeTable();
  ASSERT_TRUE(t->Insert({Value(1), Value(0), Value(0.0)}).ok());
  ASSERT_TRUE(t->Insert({Value(1), Value(1), Value(1.0)}).ok());
  // Backfilling a unique index over duplicate keys must fail.
  EXPECT_FALSE(t->CreateIndex("pk", {"id"}, true).ok());
  // Non-unique backfill succeeds.
  ASSERT_TRUE(t->CreateIndex("by_id", {"id"}, false).ok());
  EXPECT_EQ(t->Select(Eq("id", Value(1))).value().size(), 2u);
}

TEST(TableTest, DuplicateIndexNameRejected) {
  auto t = MakeTable();
  ASSERT_TRUE(t->CreateIndex("i", {"id"}).ok());
  EXPECT_EQ(t->CreateIndex("i", {"seg"}).code(),
            StatusCode::kAlreadyExists);
}

TEST(TableTest, IndexAcceleratesEqualityScans) {
  auto t = MakeTable();
  ASSERT_TRUE(t->CreateIndex("by_seg", {"seg"}).ok());
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(t->Insert({Value(i), Value(i % 10), Value(0.0)}).ok());
  }
  const uint64_t scans_before = t->full_scans();
  auto rows = t->Select(Eq("seg", Value(3)));
  EXPECT_EQ(rows.value().size(), 10u);
  EXPECT_EQ(t->full_scans(), scans_before);  // no full scan
  EXPECT_GT(t->index_lookups(), 0u);
}

TEST(TableTest, IndexStaysConsistentAcrossUpdateDelete) {
  auto t = MakeTable();
  ASSERT_TRUE(t->CreateIndex("by_seg", {"seg"}).ok());
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(t->Insert({Value(i), Value(i % 2), Value(0.0)}).ok());
  }
  ASSERT_TRUE(
      t->Update(Eq("seg", Value(0)), [](Row* r) { (*r)[1] = Value(5); }).ok());
  EXPECT_EQ(t->Select(Eq("seg", Value(0))).value().size(), 0u);
  EXPECT_EQ(t->Select(Eq("seg", Value(5))).value().size(), 10u);
  ASSERT_TRUE(t->Delete(Eq("seg", Value(5))).ok());
  EXPECT_EQ(t->Select(Eq("seg", Value(5))).value().size(), 0u);
  EXPECT_EQ(t->RowCount(), 10u);
}

TEST(TableTest, Aggregates) {
  auto t = MakeTable();
  for (int64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(t->Insert({Value(i), Value(0), Value(i * 1.0)}).ok());
  }
  EXPECT_EQ(t->Aggregate(AggKind::kCount, "", True()).value().AsInt(), 4);
  EXPECT_DOUBLE_EQ(t->Aggregate(AggKind::kSum, "v", True()).value().AsDouble(),
                   10.0);
  EXPECT_DOUBLE_EQ(t->Aggregate(AggKind::kAvg, "v", True()).value().AsDouble(),
                   2.5);
  EXPECT_DOUBLE_EQ(t->Aggregate(AggKind::kMin, "v", True()).value().AsDouble(),
                   1.0);
  EXPECT_DOUBLE_EQ(t->Aggregate(AggKind::kMax, "v", True()).value().AsDouble(),
                   4.0);
  // Filtered aggregate.
  EXPECT_EQ(t->Aggregate(AggKind::kCount, "", Gt("v", Value(2.0)))
                .value()
                .AsInt(),
            2);
}

TEST(TableTest, AggregatesOverEmptySet) {
  auto t = MakeTable();
  EXPECT_EQ(t->Aggregate(AggKind::kCount, "", True()).value().AsInt(), 0);
  EXPECT_TRUE(t->Aggregate(AggKind::kAvg, "v", True()).value().is_null());
  EXPECT_TRUE(t->Aggregate(AggKind::kMax, "v", True()).value().is_null());
}

TEST(TableTest, TruncateKeepsIndexes) {
  auto t = MakeTable();
  ASSERT_TRUE(t->CreateIndex("by_id", {"id"}).ok());
  ASSERT_TRUE(t->Insert({Value(1), Value(1), Value(1.0)}).ok());
  t->Truncate();
  EXPECT_EQ(t->RowCount(), 0u);
  ASSERT_TRUE(t->Insert({Value(1), Value(1), Value(1.0)}).ok());
  EXPECT_EQ(t->Select(Eq("id", Value(1))).value().size(), 1u);
}

TEST(DatabaseTest, TableRegistry) {
  Database db;
  auto t1 = db.CreateTable("a", Schema({{"x", ColumnType::kInt64}}));
  ASSERT_TRUE(t1.ok());
  EXPECT_FALSE(db.CreateTable("a", Schema(std::vector<Column>{})).ok());
  EXPECT_TRUE(db.GetTable("a").ok());
  EXPECT_FALSE(db.GetTable("b").ok());
  EXPECT_EQ(db.TableNames(), std::vector<std::string>{"a"});
  ASSERT_TRUE(db.DropTable("a").ok());
  EXPECT_FALSE(db.GetTable("a").ok());
  EXPECT_FALSE(db.DropTable("a").ok());
}

}  // namespace
}  // namespace cwf::db

#include <gtest/gtest.h>

#include "db/schema.h"

namespace cwf::db {
namespace {

Schema TestSchema() {
  return Schema({{"id", ColumnType::kInt64},
                 {"name", ColumnType::kString},
                 {"score", ColumnType::kDouble},
                 {"active", ColumnType::kBool}});
}

TEST(SchemaTest, ColumnLookup) {
  Schema s = TestSchema();
  EXPECT_EQ(s.num_columns(), 4u);
  EXPECT_EQ(s.ColumnIndex("id").value(), 0u);
  EXPECT_EQ(s.ColumnIndex("active").value(), 3u);
  EXPECT_FALSE(s.ColumnIndex("missing").ok());
}

TEST(SchemaTest, ColumnIndexesBatch) {
  Schema s = TestSchema();
  auto idx = s.ColumnIndexes({"score", "id"});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.value(), (std::vector<size_t>{2, 0}));
  EXPECT_FALSE(s.ColumnIndexes({"id", "nope"}).ok());
}

TEST(SchemaTest, TypeMatching) {
  Schema s = TestSchema();
  EXPECT_TRUE(s.TypeMatches(0, Value(5)));
  EXPECT_FALSE(s.TypeMatches(0, Value(5.0)));
  EXPECT_TRUE(s.TypeMatches(2, Value(5.0)));
  EXPECT_TRUE(s.TypeMatches(2, Value(5)));  // int widens into double column
  EXPECT_TRUE(s.TypeMatches(1, Value("x")));
  EXPECT_TRUE(s.TypeMatches(3, Value(true)));
  // Nulls fit anywhere.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(s.TypeMatches(i, Value()));
  }
}

TEST(SchemaTest, CheckRowValidatesArityAndTypes) {
  Schema s = TestSchema();
  EXPECT_TRUE(s.CheckRow({Value(1), Value("a"), Value(1.5), Value(true)}).ok());
  EXPECT_FALSE(s.CheckRow({Value(1), Value("a")}).ok());
  EXPECT_FALSE(
      s.CheckRow({Value("bad"), Value("a"), Value(1.5), Value(true)}).ok());
}

TEST(SchemaTest, ToStringListsColumns) {
  const std::string str = TestSchema().ToString();
  EXPECT_NE(str.find("id INT64"), std::string::npos);
  EXPECT_NE(str.find("score DOUBLE"), std::string::npos);
}

TEST(ColumnTypeNameTest, AllNames) {
  EXPECT_STREQ(ColumnTypeName(ColumnType::kInt64), "INT64");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kDouble), "DOUBLE");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kBool), "BOOL");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kString), "STRING");
}

}  // namespace
}  // namespace cwf::db

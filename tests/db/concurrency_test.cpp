// Thread-safety of the embedded store: the PNCWF OS-thread mode has several
// actor threads reading and writing tables concurrently.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "db/database.h"

namespace cwf::db {
namespace {

TEST(TableConcurrencyTest, ParallelUpsertsAndReads) {
  Table table("t", Schema({{"k", ColumnType::kInt64},
                           {"v", ColumnType::kInt64}}));
  ASSERT_TRUE(table.CreateIndex("pk", {"k"}, true).ok());
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  constexpr int kKeys = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int64_t k = (t * 7 + i) % kKeys;
        if (i % 3 == 0) {
          auto rows = table.Select(Eq("k", Value(k)));
          if (!rows.ok()) {
            ++failures;
          }
        } else {
          auto up = table.Upsert({"k"}, {Value(k), Value(int64_t{i})});
          if (!up.ok()) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  // Upserts on kKeys distinct keys: exactly kKeys rows, index consistent.
  EXPECT_EQ(table.RowCount(), static_cast<size_t>(kKeys));
  for (int64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(table.Select(Eq("k", Value(k))).value().size(), 1u) << k;
  }
}

TEST(TableConcurrencyTest, ParallelInsertDeleteKeepsCountsSane) {
  Table table("t", Schema({{"k", ColumnType::kInt64}}));
  std::vector<std::thread> threads;
  std::atomic<int64_t> inserted{0};
  std::atomic<int64_t> deleted{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 1000; ++i) {
        const int64_t k = t * 10000 + i;
        if (table.Insert({Value(k)}).ok()) {
          inserted.fetch_add(1);
        }
        if (i % 2 == 0) {
          auto n = table.Delete(Eq("k", Value(k)));
          if (n.ok()) {
            deleted.fetch_add(static_cast<int64_t>(n.value()));
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(static_cast<int64_t>(table.RowCount()),
            inserted.load() - deleted.load());
}

// Regression (thread-safety sweep): index_lookups()/full_scans() read the
// mutable access-path counters that every Select mutates under the table
// lock — the accessors themselves must lock too, or TSan flags the read.
TEST(TableConcurrencyTest, StatsAccessorsRaceFreeAgainstSelects) {
  Table table("t", Schema({{"k", ColumnType::kInt64}}));
  ASSERT_TRUE(table.CreateIndex("pk", {"k"}, true).ok());
  for (int64_t k = 0; k < 16; ++k) {
    ASSERT_TRUE(table.Insert({Value(k)}).ok());
  }
  std::atomic<bool> stop{false};
  std::thread scanner([&] {
    for (int i = 0; i < 4000; ++i) {
      // Alternate an indexed point select with a predicate-less full scan
      // so both counters keep moving.
      (void)table.Select(Eq("k", Value(int64_t{i % 16})));
      (void)table.Select(Gt("k", Value(int64_t{-1})));
    }
    stop.store(true);
  });
  uint64_t last_lookups = 0;
  uint64_t last_scans = 0;
  while (!stop.load()) {
    const uint64_t lookups = table.index_lookups();
    const uint64_t scans = table.full_scans();
    // Monotone counters: concurrent reads may lag but never go backwards.
    EXPECT_GE(lookups, last_lookups);
    EXPECT_GE(scans, last_scans);
    last_lookups = lookups;
    last_scans = scans;
  }
  scanner.join();
  EXPECT_GT(table.index_lookups(), 0u);
  EXPECT_GT(table.full_scans(), 0u);
}

}  // namespace
}  // namespace cwf::db

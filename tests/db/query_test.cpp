#include <gtest/gtest.h>

#include "db/query.h"
#include "db/table.h"

namespace cwf::db {
namespace {

Schema S() {
  return Schema({{"a", ColumnType::kInt64},
                 {"b", ColumnType::kDouble},
                 {"s", ColumnType::kString}});
}

Row R(int64_t a, double b, std::string s) {
  return {Value(a), Value(b), Value(std::move(s))};
}

bool Match(const PredicatePtr& p, const Row& row) {
  Schema schema = S();
  CWF_CHECK(p->Bind(schema).ok());
  return p->Matches(row);
}

TEST(PredicateTest, ComparisonOperators) {
  EXPECT_TRUE(Match(Eq("a", Value(5)), R(5, 0, "")));
  EXPECT_FALSE(Match(Eq("a", Value(5)), R(6, 0, "")));
  EXPECT_TRUE(Match(Ne("a", Value(5)), R(6, 0, "")));
  EXPECT_TRUE(Match(Lt("a", Value(5)), R(4, 0, "")));
  EXPECT_FALSE(Match(Lt("a", Value(5)), R(5, 0, "")));
  EXPECT_TRUE(Match(Le("a", Value(5)), R(5, 0, "")));
  EXPECT_TRUE(Match(Gt("a", Value(5)), R(6, 0, "")));
  EXPECT_TRUE(Match(Ge("a", Value(5)), R(5, 0, "")));
}

TEST(PredicateTest, NumericComparisonAcrossIntAndDouble) {
  // int column compared against double constant and vice versa.
  EXPECT_TRUE(Match(Lt("a", Value(5.5)), R(5, 0, "")));
  EXPECT_TRUE(Match(Gt("b", Value(1)), R(0, 1.5, "")));
  EXPECT_TRUE(Match(Eq("b", Value(2)), R(0, 2.0, "")));
}

TEST(PredicateTest, StringComparison) {
  EXPECT_TRUE(Match(Eq("s", Value("abc")), R(0, 0, "abc")));
  EXPECT_TRUE(Match(Lt("s", Value("b")), R(0, 0, "a")));
  EXPECT_FALSE(Match(Lt("s", Value("a")), R(0, 0, "b")));
}

TEST(PredicateTest, NullNeverMatchesComparisons) {
  Schema schema = S();
  auto p = Eq("a", Value(1));
  ASSERT_TRUE(p->Bind(schema).ok());
  Row null_row = {Value(), Value(), Value()};
  EXPECT_FALSE(p->Matches(null_row));
  auto ne = Ne("a", Value(1));
  ASSERT_TRUE(ne->Bind(schema).ok());
  EXPECT_FALSE(ne->Matches(null_row));  // SQL-style
}

TEST(PredicateTest, BetweenIsInclusive) {
  EXPECT_TRUE(Match(Between("a", Value(2), Value(4)), R(2, 0, "")));
  EXPECT_TRUE(Match(Between("a", Value(2), Value(4)), R(4, 0, "")));
  EXPECT_FALSE(Match(Between("a", Value(2), Value(4)), R(5, 0, "")));
}

TEST(PredicateTest, BooleanCombinators) {
  auto p = And(Gt("a", Value(0)), Lt("a", Value(10)));
  EXPECT_TRUE(Match(p, R(5, 0, "")));
  EXPECT_FALSE(Match(p, R(10, 0, "")));
  auto q = Or(Eq("a", Value(1)), Eq("a", Value(2)));
  EXPECT_TRUE(Match(q, R(2, 0, "")));
  EXPECT_FALSE(Match(q, R(3, 0, "")));
  EXPECT_TRUE(Match(Not(Eq("a", Value(1))), R(2, 0, "")));
  EXPECT_TRUE(Match(True(), R(0, 0, "")));
}

TEST(PredicateTest, NestedCombination) {
  // (a >= 10 AND a <= 20) OR (s = "vip")
  auto p = Or(And(Ge("a", Value(10)), Le("a", Value(20))),
              Eq("s", Value("vip")));
  EXPECT_TRUE(Match(p, R(15, 0, "x")));
  EXPECT_TRUE(Match(p, R(0, 0, "vip")));
  EXPECT_FALSE(Match(p, R(0, 0, "x")));
}

TEST(PredicateTest, BindRejectsUnknownColumn) {
  Schema schema = S();
  EXPECT_FALSE(Eq("zzz", Value(1))->Bind(schema).ok());
  EXPECT_FALSE(And(Eq("a", Value(1)), Eq("zzz", Value(1)))->Bind(schema).ok());
}

TEST(PredicateTest, CollectEqualitiesFromConjunctions) {
  auto p = And({Eq("a", Value(1)), Eq("s", Value("x")), Gt("b", Value(0))});
  std::vector<std::pair<std::string, Value>> eqs;
  p->CollectEqualities(&eqs);
  ASSERT_EQ(eqs.size(), 2u);
  EXPECT_EQ(eqs[0].first, "a");
  EXPECT_EQ(eqs[1].first, "s");
  // OR does not expose equalities (a disjunct may not hold).
  std::vector<std::pair<std::string, Value>> none;
  Or(Eq("a", Value(1)), Eq("a", Value(2)))->CollectEqualities(&none);
  EXPECT_TRUE(none.empty());
}

TEST(PredicateTest, ToStringIsReadable) {
  auto p = And(Eq("a", Value(1)), Not(Lt("b", Value(2.0))));
  const std::string str = p->ToString();
  EXPECT_NE(str.find("a = 1"), std::string::npos);
  EXPECT_NE(str.find("NOT"), std::string::npos);
  EXPECT_NE(str.find("AND"), std::string::npos);
}

TEST(PredicateDeathTest, MatchBeforeBindAborts) {
  auto p = Eq("a", Value(1));
  Row row = R(1, 0, "");
  EXPECT_DEATH(p->Matches(row), "before Bind");
}

}  // namespace
}  // namespace cwf::db

// Export-surface integration: a short Linear Road segment runs with the
// metrics server attached, and the /metrics exposition scraped over real
// TCP must be well-formed Prometheus 0.0.4 text (the CI obs lane's gate).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "lrb/harness.h"
#include "obs/export_server.h"
#include "obs/metrics.h"

namespace cwf::obs {
namespace {

std::string Fetch(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

/// Validates Prometheus text exposition 0.0.4 structurally: every sample
/// belongs to an announced TYPE family, TYPE lines are unique, sample
/// lines parse as `name{labels} value` with a finite numeric value.
void ValidateExposition(const std::string& text) {
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n') << "exposition must end with a newline";
  std::set<std::string> typed_families;
  std::istringstream in(text);
  std::string line;
  size_t samples = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string family;
      std::string type;
      fields >> family >> type;
      EXPECT_TRUE(type == "counter" || type == "gauge" ||
                  type == "histogram")
          << line;
      EXPECT_TRUE(typed_families.insert(family).second)
          << "duplicate TYPE for " << family;
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("#", 0) == 0) {
      continue;
    }
    // Sample line: <name>[{labels}] <value>
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "non-numeric sample value in: " << line;
    std::string name = line.substr(0, space);
    const size_t brace = name.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << line;
      name = name.substr(0, brace);
    }
    // Histogram samples use the family name plus a suffix.
    for (const char* suffix : {"_bucket", "_count", "_sum", ""}) {
      const std::string stripped =
          name.size() > std::strlen(suffix)
              ? name.substr(0, name.size() - std::strlen(suffix))
              : name;
      if (name.size() > std::strlen(suffix) &&
          name.compare(name.size() - std::strlen(suffix), std::string::npos,
                       suffix) == 0 &&
          typed_families.count(stripped)) {
        name = stripped;
        break;
      }
    }
    EXPECT_TRUE(typed_families.count(name))
        << "sample without TYPE announcement: " << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);
}

TEST(ExportHttpTest, TracedLRBSegmentServesValidMetrics) {
#ifndef CWF_OBS_ENABLED
  GTEST_SKIP() << "built with CONFLUENCE_OBS=OFF";
#endif
  MetricsRegistry::Global().Reset();
  SetTracingEnabled(true);

  MetricsServer server;
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  lrb::ExperimentOptions options;
  options.workload.duration = Seconds(30);
  auto result = lrb::RunLRBExperiment(options);
  SetTracingEnabled(false);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result.value().status.ok());

  // 1. /metrics must be a valid exposition carrying the engine families.
  const std::string response = Fetch(server.port(), "/metrics");
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK", 0), 0u);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const std::string exposition = Body(response);
  ValidateExposition(exposition);
  EXPECT_NE(exposition.find("cwf_actor_firings_total{actor=\"Source\"}"),
            std::string::npos);
  EXPECT_NE(exposition.find("cwf_wave_latency_us_count"), std::string::npos);

  // 2. JSON snapshot and /top render over the same connection path.
  const std::string json = Body(Fetch(server.port(), "/metrics.json"));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  const std::string top = Body(Fetch(server.port(), "/top"));
  EXPECT_EQ(top.rfind("# ts_us ", 0), 0u);
  EXPECT_NE(top.find("TollNotification"), std::string::npos);

  // 3. The trace endpoint serves the wave timeline captured during the run.
  const std::string trace = Body(Fetch(server.port(), "/trace.json"));
  EXPECT_EQ(trace.rfind("{\"displayTimeUnit\"", 0), 0u);
  EXPECT_NE(trace.find("\"cat\":\"wave\""), std::string::npos);

  // 4. Unknown paths 404 instead of crashing the accept loop.
  EXPECT_EQ(Fetch(server.port(), "/nope").rfind("HTTP/1.0 404", 0), 0u);

  EXPECT_GE(server.requests_served(), 5u);
  server.Stop();
}

TEST(ExportHttpTest, RestartAndEphemeralPorts) {
  MetricsServer server;
  ASSERT_TRUE(server.Start(0).ok());
  const uint16_t first = server.port();
  EXPECT_FALSE(server.Start(0).ok());  // double-start refused
  server.Stop();
  server.Stop();  // idempotent
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_GT(server.port(), 0);
  (void)first;
  server.Stop();
}

}  // namespace
}  // namespace cwf::obs

// Trace-schema validation: the wave tracer's Chrome trace-event export
// must be loadable by Perfetto. Golden-style checks over a real traced
// run: required keys on every event, metadata records first, ts-ordered
// events, and matched B/E pairs per track.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "actors/library.h"
#include "directors/scwf_director.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace_buffer.h"
#include "stafilos/fifo_scheduler.h"
#include "stream/stream_source.h"

namespace cwf {
namespace {

#ifndef CWF_OBS_ENABLED

// The tracer hook sites are compiled out; there is no trace to validate.
TEST(TraceSchemaTest, SkippedWhenObservabilityCompiledOut) {
  GTEST_SKIP() << "built with CONFLUENCE_OBS=OFF";
}

#else

/// Extracts the string value of `"key":"..."` or npos-driven failure.
bool StrField(const std::string& line, const std::string& key,
              std::string* out) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  const size_t start = pos + needle.size();
  const size_t end = line.find('"', start);
  if (end == std::string::npos) {
    return false;
  }
  *out = line.substr(start, end - start);
  return true;
}

bool IntField(const std::string& line, const std::string& key, int64_t* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  *out = std::strtoll(line.c_str() + pos + needle.size(), nullptr, 10);
  return true;
}

/// One exported trace, split into per-event JSON lines.
struct ParsedTrace {
  std::vector<std::string> events;
};

ParsedTrace Parse(const std::string& json) {
  ParsedTrace out;
  size_t start = 0;
  while (start < json.size()) {
    size_t end = json.find('\n', start);
    if (end == std::string::npos) {
      end = json.size();
    }
    std::string line = json.substr(start, end - start);
    start = end + 1;
    // Strip the record separator and array/object closers.
    while (!line.empty() &&
           (line.back() == ',' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.rfind("{\"name\"", 0) == 0) {
      out.events.push_back(line);
    }
  }
  return out;
}

/// Runs a 3-actor pipeline with tracing on and returns the trace JSON.
std::string TracedRunJson() {
  obs::ResetGlobalTracer();
  obs::SetTracingEnabled(true);
  Workflow wf("traced");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* map = wf.AddActor<MapActor>(
      "map", [](const Token& t) { return Token(t.AsInt() * 2); });
  auto* sink = wf.AddActor<CollectorSink>("sink");
  CWF_CHECK(wf.Connect(src->out(), map->in()).ok());
  CWF_CHECK(wf.Connect(map->out(), sink->in()).ok());
  for (int i = 0; i < 16; ++i) {
    feed->Push(Token(i), Timestamp::Seconds(i));
  }
  feed->Close();
  VirtualClock clock;
  CostModel cm;
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  CWF_CHECK(d.Initialize(&wf, &clock, &cm).ok());
  CWF_CHECK(d.Run(Timestamp::Max()).ok());
  CWF_CHECK(d.Wrapup().ok());
  obs::SetTracingEnabled(false);
  return obs::GlobalTracer().RenderChromeJson();
}

class TraceSchemaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { json_ = new std::string(TracedRunJson()); }
  static void TearDownTestSuite() {
    delete json_;
    json_ = nullptr;
  }
  static std::string* json_;
};

std::string* TraceSchemaTest::json_ = nullptr;

TEST_F(TraceSchemaTest, DocumentShape) {
  ASSERT_NE(json_, nullptr);
  EXPECT_EQ(json_->rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_NE(json_->find("]}"), std::string::npos);
}

TEST_F(TraceSchemaTest, EveryEventHasRequiredKeys) {
  const ParsedTrace trace = Parse(*json_);
  ASSERT_GT(trace.events.size(), 4u);
  for (const std::string& ev : trace.events) {
    std::string name;
    std::string ph;
    int64_t ts = -1;
    int64_t pid = -1;
    int64_t tid = -1;
    EXPECT_TRUE(StrField(ev, "name", &name)) << ev;
    EXPECT_TRUE(StrField(ev, "ph", &ph)) << ev;
    EXPECT_TRUE(IntField(ev, "ts", &ts)) << ev;
    EXPECT_TRUE(IntField(ev, "pid", &pid)) << ev;
    EXPECT_TRUE(IntField(ev, "tid", &tid)) << ev;
    EXPECT_FALSE(name.empty()) << ev;
    EXPECT_TRUE(ph == "M" || ph == "B" || ph == "E" || ph == "X" ||
                ph == "i")
        << "unexpected phase '" << ph << "' in " << ev;
    EXPECT_GE(ts, 0) << ev;
    EXPECT_EQ(pid, 1) << ev;
    EXPECT_GE(tid, 1) << ev;
    // Complete events must carry a duration.
    if (ph == "X") {
      int64_t dur = -1;
      EXPECT_TRUE(IntField(ev, "dur", &dur)) << ev;
      EXPECT_GE(dur, 0) << ev;
    }
  }
}

TEST_F(TraceSchemaTest, MetadataComesFirstAndNamesEveryTrack) {
  const ParsedTrace trace = Parse(*json_);
  size_t i = 0;
  std::string ph;
  // The metadata prefix: process_name, then a thread_name block.
  ASSERT_TRUE(StrField(trace.events[0], "name", &ph));
  EXPECT_EQ(ph, "process_name");
  std::map<int64_t, bool> named_tids;
  for (; i < trace.events.size(); ++i) {
    ASSERT_TRUE(StrField(trace.events[i], "ph", &ph));
    if (ph != "M") {
      break;
    }
    int64_t tid = -1;
    ASSERT_TRUE(IntField(trace.events[i], "tid", &tid));
    named_tids[tid] = true;
  }
  // No metadata after the first data event.
  for (; i < trace.events.size(); ++i) {
    ASSERT_TRUE(StrField(trace.events[i], "ph", &ph));
    EXPECT_NE(ph, "M") << trace.events[i];
    int64_t tid = -1;
    ASSERT_TRUE(IntField(trace.events[i], "tid", &tid));
    EXPECT_TRUE(named_tids.count(tid))
        << "event on unnamed track tid=" << tid << ": " << trace.events[i];
  }
}

TEST_F(TraceSchemaTest, TimestampsAreMonotone) {
  const ParsedTrace trace = Parse(*json_);
  int64_t prev = 0;
  for (const std::string& ev : trace.events) {
    std::string ph;
    ASSERT_TRUE(StrField(ev, "ph", &ph));
    if (ph == "M") {
      continue;
    }
    int64_t ts = -1;
    ASSERT_TRUE(IntField(ev, "ts", &ts));
    EXPECT_GE(ts, prev) << ev;
    prev = ts;
  }
}

TEST_F(TraceSchemaTest, BeginEndPairsMatchPerTrack) {
  const ParsedTrace trace = Parse(*json_);
  std::map<int64_t, int> depth;
  size_t begins = 0;
  for (const std::string& ev : trace.events) {
    std::string ph;
    int64_t tid = -1;
    ASSERT_TRUE(StrField(ev, "ph", &ph));
    ASSERT_TRUE(IntField(ev, "tid", &tid));
    if (ph == "B") {
      ++depth[tid];
      ++begins;
    } else if (ph == "E") {
      --depth[tid];
      EXPECT_GE(depth[tid], 0) << "E without B on tid " << tid << ": " << ev;
    }
  }
  EXPECT_GT(begins, 0u) << "traced run produced no firing spans";
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced B/E on tid " << tid;
  }
}

TEST_F(TraceSchemaTest, WaveLifecycleEventsPresent) {
  // The traced pipeline runs source-rooted waves end to end, so the wave
  // track must contain born and closed instants plus latency spans.
  EXPECT_NE(json_->find("\"cat\":\"wave\""), std::string::npos);
  EXPECT_NE(json_->find("born"), std::string::npos);
  EXPECT_NE(json_->find("closed"), std::string::npos);
  // The birth-to-closure latency span is a complete event on the wave track.
  EXPECT_NE(json_->find("\"cat\":\"wave\",\"ph\":\"X\""), std::string::npos);
}

TEST_F(TraceSchemaTest, TracerCountsWavesClosed) {
  // Regenerate with a fresh tracer to read the counters directly.
  obs::ResetGlobalTracer();
  (void)TracedRunJson();
  EXPECT_GT(obs::GlobalTracer().waves_born(), 0u);
  EXPECT_EQ(obs::GlobalTracer().waves_born(),
            obs::GlobalTracer().waves_closed());
  EXPECT_EQ(obs::GlobalTracer().live_waves(), 0u);
}

#endif  // CWF_OBS_ENABLED

}  // namespace
}  // namespace cwf

// Host-time profiler: self-time nesting, thread-local ring merging,
// runtime toggling, the decomposition-sums-to-wall invariant, and
// critical-path attribution (including the ring-wraparound truncation
// contract) — see src/obs/profile.h.

#include "obs/profile.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/wave.h"
#include "obs/metrics.h"
#include "obs/trace_buffer.h"

namespace cwf::obs {
namespace {

/// Busy-spins until at least `ns` nanoseconds of the profiler clock have
/// elapsed (sleeps are too coarse to make self-time assertions reliable).
void SpinFor(int64_t ns) {
  const int64_t until = ProfileClockNanos() + ns;
  while (ProfileClockNanos() < until) {
  }
}

uint64_t CounterValue(const ProfileSite* site) {
  Profiler::FlushCurrentThread();
  return site->self_ns->Value();
}

class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override { SetProfilingEnabled(true); }
  void TearDown() override { SetProfilingEnabled(false); }
};

TEST_F(ProfileTest, PhaseTaxonomyNamesAreStable) {
  EXPECT_STREQ("scheduler_dispatch",
               ProfilePhaseName(ProfilePhase::kSchedulerDispatch));
  EXPECT_STREQ("fire", ProfilePhaseName(ProfilePhase::kFire));
  EXPECT_STREQ("blocked", ProfilePhaseName(ProfilePhase::kBlocked));
  for (size_t i = 0; i < kProfilePhaseCount; ++i) {
    EXPECT_NE(nullptr, ProfilePhaseName(ProfilePhaseAt(i)));
  }
}

TEST_F(ProfileTest, SiteResolutionIsMemoized) {
  const ProfileSite* a = Profiler::Global().Site("memo", ProfilePhase::kFire);
  const ProfileSite* b = Profiler::Global().Site("memo", ProfilePhase::kFire);
  ASSERT_NE(nullptr, a);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, Profiler::Global().Site("memo", ProfilePhase::kPrefire));
}

TEST_F(ProfileTest, NestedScopeTimeIsSubtractedFromParent) {
  const ProfileSite* outer =
      Profiler::Global().Site("nest_outer", ProfilePhase::kFire);
  const ProfileSite* inner =
      Profiler::Global().Site("nest_inner", ProfilePhase::kReceiverPut);
  constexpr int64_t kOuterNs = 4'000'000;
  constexpr int64_t kInnerNs = 8'000'000;
  const int64_t total_start = ProfileClockNanos();
  {
    ScopedProfilePhase outer_scope(outer);
    SpinFor(kOuterNs);
    {
      ScopedProfilePhase inner_scope(inner);
      SpinFor(kInnerNs);
    }
  }
  const int64_t total_ns = ProfileClockNanos() - total_start;
  const uint64_t outer_ns = CounterValue(outer);
  const uint64_t inner_ns = CounterValue(inner);
  // With self-time semantics the outer cell must NOT include the inner's
  // duration: outer_self = outer_dur - inner_dur <= total - kInnerNs. The
  // bound is relative to the measured total, so preemption by other test
  // binaries cannot break it (outer_dur <= total, inner_dur >= kInnerNs).
  EXPECT_GE(inner_ns, static_cast<uint64_t>(kInnerNs));
  EXPECT_GE(outer_ns, static_cast<uint64_t>(kOuterNs));
  EXPECT_LE(outer_ns, static_cast<uint64_t>(total_ns - kInnerNs));
  EXPECT_LE(outer_ns + inner_ns, static_cast<uint64_t>(total_ns));
}

TEST_F(ProfileTest, ThreadLocalRingsMergeAcrossThreads) {
  const ProfileSite* site =
      Profiler::Global().Site("merge", ProfilePhase::kFire);
  const uint64_t samples_before = site->samples->Value();
  constexpr int kThreads = 4;
  // Exceeds the thread-local ring capacity, forcing mid-run flushes on
  // every thread, not just the exit flush.
  constexpr int kScopesPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([site] {
      for (int i = 0; i < kScopesPerThread; ++i) {
        ScopedProfilePhase scope(site);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  // Joined threads have flushed their rings via thread-local destructors.
  EXPECT_EQ(samples_before + kThreads * kScopesPerThread,
            site->samples->Value());
}

TEST_F(ProfileTest, DisabledProfilerRecordsNothing) {
  const ProfileSite* site =
      Profiler::Global().Site("toggle", ProfilePhase::kFire);
  SetProfilingEnabled(false);
  {
    ScopedProfilePhase scope(site);
    SpinFor(1'000'000);
  }
  Profiler::FlushCurrentThread();
  EXPECT_EQ(0u, site->samples->Value());
  EXPECT_EQ(0u, site->self_ns->Value());

  SetProfilingEnabled(true);
  {
    ScopedProfilePhase scope(site);
    SpinFor(1'000'000);
  }
  Profiler::FlushCurrentThread();
  EXPECT_EQ(1u, site->samples->Value());
  EXPECT_GT(site->self_ns->Value(), 0u);
}

TEST_F(ProfileTest, NullSiteScopeIsInert) {
  ScopedProfilePhase scope(nullptr);  // must not crash or record
}

TEST_F(ProfileTest, DecompositionSumsApproximatelyToWall) {
  const ProfileSite* work =
      Profiler::Global().Site("wallcov", ProfilePhase::kFire);
  const ProfileSnapshot before = SnapshotProfile(MetricsRegistry::Global());
  const uint64_t work_before = work->self_ns->Value();
  {
    ScopedProfileWall wall;
    for (int i = 0; i < 20; ++i) {
      ScopedProfilePhase scope(work);
      SpinFor(1'000'000);
    }
  }
  const ProfileSnapshot after = SnapshotProfile(MetricsRegistry::Global());
  const uint64_t wall_delta = after.wall_ns - before.wall_ns;
  const uint64_t work_delta = work->self_ns->Value() - work_before;
  ASSERT_GT(wall_delta, 0u);
  // Everything inside the wall scope ran under a phase scope, so the
  // decomposition must cover the bulk of the wall (the gap is loop
  // overhead plus any preemption landing between scopes) and never
  // exceed it.
  EXPECT_GE(work_delta, wall_delta * 4 / 5);
  EXPECT_LE(work_delta, wall_delta);
}

TEST_F(ProfileTest, SnapshotRendersTsvAndJson) {
  const ProfileSite* site =
      Profiler::Global().Site("render", ProfilePhase::kSerialization);
  {
    ScopedProfilePhase scope(site);
    SpinFor(100'000);
  }
  const ProfileSnapshot snapshot = SnapshotProfile(MetricsRegistry::Global());
  const std::string text = RenderProfileText(snapshot);
  EXPECT_NE(std::string::npos, text.find("# wall_us "));
  EXPECT_NE(std::string::npos,
            text.find("actor\tphase\tself_us\tsamples\tpct_wall"));
  EXPECT_NE(std::string::npos, text.find("render\tserialization\t"));
  const std::string json = RenderProfileJson(snapshot);
  EXPECT_NE(std::string::npos, json.find("\"coverage_pct\""));
  EXPECT_NE(std::string::npos, json.find("\"render\""));
}

// ---------------------------------------------------------------------------
// Critical-path attribution
// ---------------------------------------------------------------------------

TEST(CriticalPathTest, GoldenThreeActorChain) {
  WaveTracer tracer;
  const uint32_t a = tracer.RegisterTrack("A");
  const uint32_t b = tracer.RegisterTrack("B");
  const uint32_t c = tracer.RegisterTrack("C");
  // One wave: born at t=0, A [50,200], B [300,600], C [800,1800] (closure).
  // Queueing spans: A waits 50, B waits 100, C waits 200. Emissions stamp a
  // child tag BEFORE the firing is recorded (FlushActorOutputs runs inside
  // the firing), keeping the wave in flight until C consumes the last one.
  const WaveTag wave = WaveTag::Root(1);
  tracer.OnEventEmitted(wave, Timestamp(0), Timestamp(0), 1);
  tracer.OnEventEmitted(wave.Child(1), Timestamp(200), Timestamp(200), 1);
  tracer.OnFiring(a, &wave, Timestamp(50), Timestamp(200), 1, 1);
  tracer.OnEventEmitted(wave.Child(2), Timestamp(600), Timestamp(600), 1);
  tracer.OnFiring(b, &wave, Timestamp(300), Timestamp(600), 1, 1);
  tracer.OnFiring(c, &wave, Timestamp(800), Timestamp(1800), 1, 0);
  ASSERT_EQ(1u, tracer.waves_closed());

  const CriticalPathReport report = ComputeCriticalPaths(tracer, 3);
  EXPECT_EQ(1u, report.waves_analyzed);
  EXPECT_EQ(0u, report.truncated_waves);
  ASSERT_EQ(1u, report.groups.size());
  const CriticalPathGroup& group = report.groups[0];
  EXPECT_EQ("C", group.terminal_actor);
  EXPECT_EQ(1u, group.waves);
  EXPECT_EQ(1800, group.total_latency_us);
  ASSERT_EQ(3u, group.top.size());
  // Descending: C processing 1000, B processing 300, C queueing 200.
  EXPECT_EQ("C", group.top[0].actor);
  EXPECT_FALSE(group.top[0].queueing);
  EXPECT_EQ(1000, group.top[0].total_us);
  EXPECT_NEAR(1000.0 / 1800.0, group.top[0].share, 1e-9);
  EXPECT_EQ("B", group.top[1].actor);
  EXPECT_FALSE(group.top[1].queueing);
  EXPECT_EQ(300, group.top[1].total_us);
  EXPECT_EQ("C", group.top[2].actor);
  EXPECT_TRUE(group.top[2].queueing);
  EXPECT_EQ(200, group.top[2].total_us);

  const std::string text = RenderCriticalPathText(report);
  EXPECT_NE(std::string::npos, text.find("terminal=C"));
  const std::string json = RenderCriticalPathJson(report);
  EXPECT_NE(std::string::npos, json.find("\"terminal\":\"C\""));
}

TEST(CriticalPathTest, WavesWithDistinctTerminalsFormSeparateGroups) {
  WaveTracer tracer;
  const uint32_t a = tracer.RegisterTrack("A");
  const uint32_t b = tracer.RegisterTrack("B");
  const WaveTag w1 = WaveTag::Root(1);
  const WaveTag w2 = WaveTag::Root(2);
  tracer.OnEventEmitted(w1, Timestamp(0), Timestamp(0), 1);
  tracer.OnEventEmitted(w2, Timestamp(0), Timestamp(0), 1);
  tracer.OnFiring(a, &w1, Timestamp(10), Timestamp(500), 1, 0);
  tracer.OnFiring(b, &w2, Timestamp(10), Timestamp(100), 1, 0);
  const CriticalPathReport report = ComputeCriticalPaths(tracer, 3);
  EXPECT_EQ(2u, report.waves_analyzed);
  ASSERT_EQ(2u, report.groups.size());
  // Groups sort by total latency: wave 1 (500us at A) dominates.
  EXPECT_EQ("A", report.groups[0].terminal_actor);
  EXPECT_EQ("B", report.groups[1].terminal_actor);
}

TEST(CriticalPathTest, WraparoundTruncatedWaveIsDroppedAndCounted) {
  // Ring of 8: the filler wave's spans evict wave 1's birth before wave 1
  // closes, so wave 1 must be dropped from attribution (a partial chain
  // would misattribute its latency) and surface in truncated_waves.
  WaveTracer tracer(8);
  const uint32_t a = tracer.RegisterTrack("A");
  const WaveTag w1 = WaveTag::Root(1);
  const WaveTag filler = WaveTag::Root(2);
  tracer.OnEventEmitted(w1, Timestamp(0), Timestamp(0), 1);
  tracer.OnEventEmitted(filler, Timestamp(1), Timestamp(1), 1);
  for (int i = 0; i < 4; ++i) {  // 4 firings x >=2 events >= capacity
    tracer.OnFiring(a, &filler, Timestamp(10 + 10 * i), Timestamp(15 + 10 * i),
                    1, 1);
  }
  tracer.OnFiring(a, &w1, Timestamp(100), Timestamp(200), 1, 0);
  // Both waves closed (the filler on its first firing, wave 1 at the end).
  ASSERT_EQ(2u, tracer.waves_closed());

  const CriticalPathReport report = ComputeCriticalPaths(tracer, 3);
  EXPECT_EQ(0u, report.waves_analyzed);
  EXPECT_EQ(1u, report.truncated_waves);
  EXPECT_TRUE(report.groups.empty());
#ifdef CWF_OBS_ENABLED
  Gauge* truncated = MetricsRegistry::Global().GetGauge(
      "cwf_trace_truncated_waves");
  ASSERT_NE(nullptr, truncated);
  EXPECT_EQ(1, truncated->Value());
#endif
}

}  // namespace
}  // namespace cwf::obs

// Telemetry hook-layer behavior: directors bind instruments into the
// global registry, receiver probes count traffic, runtime toggles stop the
// sinks, and Director::Initialize re-entry resets per-run state (receiver
// high-water marks, actor statistics) without invalidating instruments.

#include <gtest/gtest.h>

#include <memory>

#include "actors/library.h"
#include "directors/scwf_director.h"
#include "obs/export_server.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "stafilos/fifo_scheduler.h"
#include "stream/stream_source.h"

namespace cwf {
namespace {

struct Rig {
  Workflow wf{"w"};
  std::shared_ptr<PushChannel> feed = std::make_shared<PushChannel>();
  StreamSourceActor* src;
  MapActor* map;
  CollectorSink* sink;
  VirtualClock clock;
  CostModel cm;

  Rig() {
    src = wf.AddActor<StreamSourceActor>("src", feed);
    map = wf.AddActor<MapActor>(
        "map", [](const Token& t) { return Token(t.AsInt() + 1); });
    sink = wf.AddActor<CollectorSink>("sink");
    CWF_CHECK(wf.Connect(src->out(), map->in()).ok());
    CWF_CHECK(wf.Connect(map->out(), sink->in()).ok());
  }

  void Feed(int n) {
    for (int i = 0; i < n; ++i) {
      feed->Push(Token(i), Timestamp::Seconds(i));
    }
    feed->Close();
  }
};

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::Global().Reset();
    obs::SetMetricsEnabled(true);
  }
  void TearDown() override { obs::SetMetricsEnabled(true); }
};

TEST_F(TelemetryTest, FiringMetricsLandInGlobalRegistry) {
#ifndef CWF_OBS_ENABLED
  GTEST_SKIP() << "built with CONFLUENCE_OBS=OFF";
#endif
  Rig rig;
  rig.Feed(12);
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  EXPECT_EQ(reg.GetCounter("cwf_actor_firings_total", "actor", "map")->Value(),
            12u);
  EXPECT_EQ(
      reg.GetCounter("cwf_actor_events_consumed_total", "actor", "map")
          ->Value(),
      12u);
  EXPECT_EQ(
      reg.GetCounter("cwf_actor_events_emitted_total", "actor", "map")
          ->Value(),
      12u);
  // Virtual-clock cost lands in the cost histogram.
  EXPECT_EQ(reg.GetHistogram("cwf_actor_cost_us", "actor", "map")->Count(),
            12u);
  // Scheduler decisions were counted for scheduled dispatch.
  EXPECT_GT(reg.GetCounter("cwf_sched_decisions_total", "actor", "map")
                ->Value(),
            0u);
}

TEST_F(TelemetryTest, ReceiverProbesCountPutsGetsAndDepth) {
#ifndef CWF_OBS_ENABLED
  GTEST_SKIP() << "built with CONFLUENCE_OBS=OFF";
#endif
  Rig rig;
  rig.Feed(7);
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  // The map actor's input channel is labeled with the port's full name.
  EXPECT_EQ(
      reg.GetCounter("cwf_receiver_puts_total", "port", "map.in")->Value(),
      7u);
  EXPECT_EQ(
      reg.GetCounter("cwf_receiver_gets_total", "port", "map.in")->Value(),
      7u);
  EXPECT_GE(reg.GetGauge("cwf_receiver_depth", "port", "map.in")->Max(), 1);
}

TEST_F(TelemetryTest, DisablingMetricsStopsSinksButNotExecution) {
  obs::SetMetricsEnabled(false);
  Rig rig;
  rig.Feed(5);
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  EXPECT_EQ(reg.GetCounter("cwf_actor_firings_total", "actor", "map")->Value(),
            0u);
  EXPECT_EQ(
      reg.GetCounter("cwf_receiver_puts_total", "port", "map.in")->Value(),
      0u);
  // The workflow itself ran normally; the stats observer (always on) saw
  // every firing.
  EXPECT_EQ(rig.sink->TakeSnapshot().size(), 5u);
  EXPECT_EQ(d.stats().Get(rig.map).invocations, 5u);
}

TEST_F(TelemetryTest, InitializeReEntryResetsPerRunState) {
  Rig rig;
  rig.Feed(9);
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(d.stats().Get(rig.map).invocations, 9u);

  // Re-initialize: receivers are rebuilt, every input-port high-water mark
  // and the statistics module start from zero.
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  EXPECT_EQ(d.stats().Get(rig.map).invocations, 0u);
  for (const auto& actor : rig.wf.actors()) {
    for (const auto& port : actor->input_ports()) {
      for (size_t c = 0; c < port->ChannelCount(); ++c) {
        if (Receiver* r = port->receiver(c)) {
          EXPECT_EQ(r->high_water_mark(), 0u)
              << actor->name() << "." << port->name();
        }
      }
    }
  }
  // Instrument pointers stayed valid: a second run keeps counting on the
  // same instruments (cumulative across runs by design).
  // The original feed is drained/closed; a fresh run over the same actors
  // simply observes no new input and fires nothing — Run must still work.
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
}

TEST_F(TelemetryTest, TopTsvRendersBoundActors) {
#ifndef CWF_OBS_ENABLED
  GTEST_SKIP() << "built with CONFLUENCE_OBS=OFF";
#endif
  Rig rig;
  rig.Feed(4);
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());

  const std::string tsv = obs::RenderTopTsv(obs::MetricsRegistry::Global());
  EXPECT_EQ(tsv.rfind("# ts_us ", 0), 0u);
  EXPECT_NE(tsv.find("actor\tfirings"), std::string::npos);
  EXPECT_NE(tsv.find("\nmap\t4\t"), std::string::npos);
}

}  // namespace
}  // namespace cwf

// Metrics instrument correctness: log-bucket boundaries, percentile math,
// merge/overflow behavior, registry pointer stability, and concurrent
// updates (run under TSan via the unit-obs-tsan label).

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace cwf::obs {
namespace {

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0: <= 0. Bucket i (i >= 1): [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::BucketIndex(-5), 0u);
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // Everything at or above 2^(kBuckets-2) lands in the overflow bucket.
  const int64_t overflow_floor = int64_t{1} << (Histogram::kBuckets - 2);
  EXPECT_EQ(Histogram::BucketIndex(overflow_floor), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<int64_t>::max()),
            Histogram::kBuckets - 1);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kBuckets - 1),
            std::numeric_limits<int64_t>::max());

  // Upper bound of bucket i is one less than lower bound of bucket i+1:
  // no value can fall between buckets.
  for (size_t i = 1; i + 2 < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpperBound(i)), i);
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpperBound(i) + 1),
              i + 1);
  }
}

TEST(HistogramTest, CountSumMaxMean) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Sum(), 60);
  EXPECT_EQ(h.Max(), 30);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
}

TEST(HistogramTest, PercentilesOfUniformSamples) {
  Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  // Log-bucketing loses in-bucket detail; linear interpolation keeps the
  // estimate inside the right bucket, so allow that bucket's width.
  const double p50 = h.Percentile(50);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1023.0);
  const double p99 = h.Percentile(99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1000.0);
  // p100 is exactly the observed max, not a bucket bound.
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1000.0);
  // Estimates must be monotone in p.
  double prev = 0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
}

TEST(HistogramTest, SingleSamplePercentiles) {
  Histogram h;
  h.Record(777);
  // Every percentile of a single sample is bounded by the sample itself
  // (the max clamps the bucket's upper interpolation bound).
  EXPECT_LE(h.Percentile(50), 777.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 777.0);
  EXPECT_EQ(h.Max(), 777);
}

TEST(HistogramTest, OverflowBucketUsesMaxAsUpperBound) {
  Histogram h;
  const int64_t big = int64_t{1} << (Histogram::kBuckets - 2);
  h.Record(big);
  h.Record(big + 500);
  // Percentile interpolation in the unbounded overflow bucket must clamp
  // to the observed max instead of int64 max.
  EXPECT_LE(h.Percentile(99), static_cast<double>(big + 500));
  EXPECT_GE(h.Percentile(1), static_cast<double>(big) * 0.99);
}

TEST(HistogramTest, MergeFromCombinesEverything) {
  Histogram a;
  Histogram b;
  a.Record(5);
  a.Record(100);
  b.Record(1000);
  a.MergeFrom(b);
  EXPECT_EQ(a.Count(), 3u);
  EXPECT_EQ(a.Sum(), 1105);
  EXPECT_EQ(a.Max(), 1000);
  const HistogramSnapshot snap = a.Snapshot();
  uint64_t total = 0;
  for (const auto& [bound, n] : snap.buckets) {
    total += n;
  }
  EXPECT_EQ(total, 3u);
}

TEST(HistogramTest, SnapshotListsOnlyNonEmptyBucketsInOrder) {
  Histogram h;
  h.Record(1);
  h.Record(1000);
  const HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.buckets.size(), 2u);
  EXPECT_LT(snap.buckets[0].first, snap.buckets[1].first);
  EXPECT_EQ(snap.buckets[0].second, 1u);
  EXPECT_EQ(snap.buckets[1].second, 1u);
}

TEST(HistogramTest, ResetZeroes) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0);
  EXPECT_EQ(h.Max(), 0);
  EXPECT_TRUE(h.Snapshot().buckets.empty());
}

TEST(CounterTest, AddAndReset) {
  Counter c;
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, TracksValueAndHighWaterMark) {
  Gauge g;
  g.Set(10);
  g.Set(3);
  EXPECT_EQ(g.Value(), 3);
  EXPECT_EQ(g.Max(), 10);
  g.Add(20);
  EXPECT_EQ(g.Value(), 23);
  EXPECT_EQ(g.Max(), 23);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
  EXPECT_EQ(g.Max(), 0);
}

TEST(MetricsRegistryTest, StablePointersAndIdentity) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("x_total", "actor", "a");
  Counter* c2 = reg.GetCounter("x_total", "actor", "a");
  Counter* c3 = reg.GetCounter("x_total", "actor", "b");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, c3);
  c1->Add(7);
  reg.Reset();
  // Reset zeroes values but never invalidates pointers.
  EXPECT_EQ(c1->Value(), 0u);
  c1->Add(1);
  EXPECT_EQ(reg.GetCounter("x_total", "actor", "a")->Value(), 1u);
}

TEST(MetricsRegistryTest, LabelValuesSortedPerName) {
  MetricsRegistry reg;
  reg.GetCounter("y_total", "actor", "zeta");
  reg.GetCounter("y_total", "actor", "alpha");
  reg.GetCounter("other_total", "actor", "nope");
  const std::vector<std::string> values = reg.LabelValues("y_total");
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], "alpha");
  EXPECT_EQ(values[1], "zeta");
}

TEST(MetricsRegistryTest, PrometheusExpositionShape) {
  MetricsRegistry reg;
  reg.SetHelp("req_total", "requests");
  reg.GetCounter("req_total", "actor", "a \"quoted\"\nname")->Add(3);
  reg.GetGauge("depth", "port", "p")->Set(5);
  reg.GetHistogram("lat_us")->Record(100);
  const std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("# HELP req_total requests"), std::string::npos);
  EXPECT_NE(text.find("# TYPE req_total counter"), std::string::npos);
  // Label escaping: backslash-quote and backslash-n.
  EXPECT_NE(text.find("req_total{actor=\"a \\\"quoted\\\"\\nname\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_us histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 1"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 100"), std::string::npos);
  // Exposition must end with a newline (scrapers require it).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(MetricsRegistryTest, JsonSnapshotContainsInstruments) {
  MetricsRegistry reg;
  reg.GetCounter("c_total")->Add(2);
  reg.GetHistogram("h_us")->Record(64);
  const std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c_total\":2"), std::string::npos);
  EXPECT_NE(json.find("\"h_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
}

// --- Concurrency (meaningful under -L tsan) -------------------------------

TEST(MetricsConcurrencyTest, CountersSumAcrossThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Add();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsConcurrencyTest, HistogramKeepsCountBucketInvariant) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record((t + 1) * 100 + i % 50);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (const auto& [bound, n] : snap.buckets) {
    bucket_total += n;
  }
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(MetricsConcurrencyTest, RegistryLookupsRaceWithRendering) {
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < 200; ++i) {
        reg.GetCounter("race_total", "actor", "a" + std::to_string(i % 7))
            ->Add(1);
        reg.GetGauge("race_depth", "actor", "a" + std::to_string(t))->Set(i);
      }
    });
  }
  threads.emplace_back([&reg] {
    for (int i = 0; i < 50; ++i) {
      (void)reg.RenderPrometheus();
      (void)reg.RenderJson();
    }
  });
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(reg.GetCounter("race_total", "actor", "a0")->Value() +
                reg.GetCounter("race_total", "actor", "a1")->Value() +
                reg.GetCounter("race_total", "actor", "a2")->Value() +
                reg.GetCounter("race_total", "actor", "a3")->Value() +
                reg.GetCounter("race_total", "actor", "a4")->Value() +
                reg.GetCounter("race_total", "actor", "a5")->Value() +
                reg.GetCounter("race_total", "actor", "a6")->Value(),
            4u * 200u);
}

}  // namespace
}  // namespace cwf::obs

#include <gtest/gtest.h>

#include "directors/taxonomy.h"

namespace cwf {
namespace {

TEST(TaxonomyTest, ContainsAllPaperRows) {
  const auto& rows = DirectorTaxonomy();
  EXPECT_EQ(rows.size(), 14u);  // 4 Kepler + 8 PtolemyII + PNCWF + SCWF
  auto find = [&](const std::string& name) -> const DirectorInfo* {
    for (const auto& r : rows) {
      if (r.name == name) {
        return &r;
      }
    }
    return nullptr;
  };
  for (const char* name :
       {"SDF", "DDF", "PN", "DE", "CN", "CI", "CSP", "DT", "HDF", "SR", "TM",
        "TPN", "PNCWF", "SCWF"}) {
    EXPECT_NE(find(name), nullptr) << name;
  }
  EXPECT_EQ(find("PNCWF")->group, "CONFLuEnCE");
  EXPECT_EQ(find("PNCWF")->scheduling, "Thread/OS");
  EXPECT_EQ(find("PNCWF")->computation_driver, "Data-Windowed-driven");
}

TEST(TaxonomyTest, ImplementedFlagMatchesLibrary) {
  for (const auto& row : DirectorTaxonomy()) {
    const bool should_be_implemented =
        row.name == "SDF" || row.name == "DDF" || row.name == "PNCWF" ||
        row.name == "SCWF";
    EXPECT_EQ(row.implemented_here, should_be_implemented) << row.name;
  }
}

TEST(TaxonomyTest, RenderProducesAlignedTable) {
  const std::string table = RenderDirectorTaxonomy();
  EXPECT_NE(table.find("Director"), std::string::npos);
  EXPECT_NE(table.find("PNCWF"), std::string::npos);
  EXPECT_NE(table.find("Pluggable (STAFiLOS)"), std::string::npos);
  // One header + separator + 14 rows.
  size_t lines = 0;
  for (char c : table) {
    lines += (c == '\n');
  }
  EXPECT_EQ(lines, 16u);
}

}  // namespace
}  // namespace cwf

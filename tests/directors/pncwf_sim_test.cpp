#include <gtest/gtest.h>

#include "actors/library.h"
#include "directors/pncwf_director.h"
#include "stream/stream_source.h"

namespace cwf {
namespace {

struct Rig {
  Workflow wf{"w"};
  std::shared_ptr<PushChannel> feed = std::make_shared<PushChannel>();
  StreamSourceActor* src;
  MapActor* map;
  CollectorSink* sink;
  VirtualClock clock;
  CostModel cm;

  Rig() {
    src = wf.AddActor<StreamSourceActor>("src", feed);
    map = wf.AddActor<MapActor>(
        "map", [](const Token& t) { return Token(t.AsInt() + 1); });
    sink = wf.AddActor<CollectorSink>("sink");
    CWF_CHECK(wf.Connect(src->out(), map->in()).ok());
    CWF_CHECK(wf.Connect(map->out(), sink->in()).ok());
  }
};

TEST(PNCWFSimTest, ProcessesStreamUnderVirtualTime) {
  Rig rig;
  for (int i = 0; i < 10; ++i) {
    rig.feed->Push(Token(i), Timestamp::Seconds(i));
  }
  rig.feed->Close();
  PNCWFDirector d;
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  auto got = rig.sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 10u);
  EXPECT_EQ(got[9].token.AsInt(), 10);
  EXPECT_GT(d.context_switches(), 0u);
}

TEST(PNCWFSimTest, ChargesModeledCosts) {
  Rig rig;
  rig.feed->Push(Token(1), Timestamp(0));
  rig.feed->Close();
  rig.cm.SetDefault({1000, 0, 0});
  rig.cm.context_switch_overhead = 100;
  rig.cm.sync_per_event_overhead = 0;
  PNCWFDirector d;
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  // 3 firings (src, map, sink) + context switches: strictly positive time.
  EXPECT_GE(rig.clock.Now().micros(), 3000 + 300);
}

TEST(PNCWFSimTest, ResponseTimeIncludesQueueing) {
  Rig rig;
  // Expensive map: 1 virtual second per firing; 5 simultaneous arrivals.
  rig.cm.SetActorCost("map", {1000000, 0, 0});
  for (int i = 0; i < 5; ++i) {
    rig.feed->Push(Token(i), Timestamp(0));
  }
  rig.feed->Close();
  PNCWFDirector d;
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  auto got = rig.sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 5u);
  // The 5th tuple waited for four 1-second firings before its own.
  const Duration last_response = got[4].completed_at - got[4].event_timestamp;
  EXPECT_GE(last_response, Seconds(4.9));
}

TEST(PNCWFSimTest, RequiresVirtualClockAndCostModel) {
  Rig rig;
  RealClock real;
  PNCWFDirector d1;
  EXPECT_EQ(d1.Initialize(&rig.wf, &real, &rig.cm).code(),
            StatusCode::kInvalidArgument);
  PNCWFDirector d2;
  EXPECT_EQ(d2.Initialize(&rig.wf, &rig.clock, nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(PNCWFSimTest, TimedWindowsCloseViaTimeouts) {
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* minute = wf.AddActor<WindowFnActor>(
      "minute", WindowSpec::Time(Seconds(60), Seconds(60)),
      [](const Window& w, std::vector<Token>* out) {
        out->push_back(Token(static_cast<int64_t>(w.size())));
        return Status::OK();
      });
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(src->out(), minute->in()).ok());
  ASSERT_TRUE(wf.Connect(minute->out(), sink->in()).ok());
  feed->Push(Token(1), Timestamp::Seconds(10));
  feed->Push(Token(2), Timestamp::Seconds(50));
  feed->Close();
  VirtualClock clock;
  CostModel cm;
  PNCWFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, &cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Seconds(120)).ok());
  auto got = sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].token.AsInt(), 2);
}

TEST(PNCWFSimTest, HigherSyncOverheadLowersCapacity) {
  // Same workload, two overhead settings: the costlier one finishes later.
  auto run_with_sync = [](Duration sync) {
    Rig rig;
    for (int i = 0; i < 50; ++i) {
      rig.feed->Push(Token(i), Timestamp(0));
    }
    rig.feed->Close();
    rig.cm.sync_per_event_overhead = sync;
    PNCWFDirector d;
    CWF_CHECK(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
    CWF_CHECK(d.Run(Timestamp::Max()).ok());
    return rig.clock.Now();
  };
  EXPECT_LT(run_with_sync(0), run_with_sync(200));
}

}  // namespace
}  // namespace cwf

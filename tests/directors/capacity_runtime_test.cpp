// Runtime validation of the static capacity planner: drive every built-in
// graph under its declared deployment and assert the observed receiver
// high-water marks never exceed the planner's per-channel bounds. Also
// covers the PNCWF blocking-put/backpressure mode the plan enables.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "actors/library.h"
#include "analysis/builtin_graphs.h"
#include "analysis/capacity_planner.h"
#include "directors/pncwf_director.h"
#include "directors/scwf_director.h"
#include "lrb/generator.h"
#include "stafilos/edf_scheduler.h"
#include "stafilos/fifo_scheduler.h"
#include "stafilos/qbs_scheduler.h"
#include "stafilos/rb_scheduler.h"
#include "stafilos/rr_scheduler.h"
#include "stream/stream_source.h"

namespace cwf {
namespace {

using analysis::AnalysisOptionsFor;
using analysis::BuildBuiltinGraphs;
using analysis::BuiltinGraph;
using analysis::CapacityPlan;
using analysis::PlanCapacity;

std::unique_ptr<AbstractScheduler> SchedulerFor(const BuiltinGraph& graph) {
  const std::string policy =
      graph.scheduler ? graph.scheduler->policy : "QBS";
  if (policy == "RR") return std::make_unique<RRScheduler>();
  if (policy == "RB") return std::make_unique<RBScheduler>();
  if (policy == "FIFO") return std::make_unique<FIFOScheduler>();
  if (policy == "EDF") return std::make_unique<EDFScheduler>();
  return std::make_unique<QBSScheduler>();
}

std::unique_ptr<Director> DirectorFor(const BuiltinGraph& graph) {
  if (graph.director == "PNCWF") {
    PNCWFOptions options;
    options.mode = PNCWFMode::kSimulatedThreads;
    return std::make_unique<PNCWFDirector>(options);
  }
  return std::make_unique<SCWFDirector>(SchedulerFor(graph));
}

/// Feed every stream source of an example graph at its declared rate for
/// `seconds` of virtual time. Tokens respect the source's declared schema
/// (scalar streams get scalars); record tokens carry every group-by field
/// the catalog uses so grouped windows can extract their keys.
void FeedExampleSources(const BuiltinGraph& graph, double seconds) {
  for (const auto& actor : graph.workflow->actors()) {
    auto* source = dynamic_cast<StreamSourceActor*>(actor.get());
    if (source == nullptr) {
      continue;
    }
    const auto rate = graph.source_rates.find(source->name());
    ASSERT_NE(rate, graph.source_rates.end())
        << graph.name << " source '" << source->name()
        << "' has no declared rate";
    const double per_second = rate->second.max;
    const int total = static_cast<int>(per_second * seconds);
    const TokenType declared = source->out()->schema();
    for (int i = 0; i < total; ++i) {
      const Timestamp arrival = Timestamp::Seconds(i / per_second);
      if (declared == TokenType::Double()) {
        source->channel()->Push(Token(static_cast<double>(i)), arrival);
        continue;
      }
      if (declared == TokenType::Int()) {
        source->channel()->Push(Token(int64_t{i}), arrival);
        continue;
      }
      auto record = std::make_shared<Record>();
      record->Set("order", Value(int64_t{i % 5}))
          .Set("warehouse", Value("w" + std::to_string(i % 3)))
          .Set("kind", Value(i % 2 == 0 ? "order" : "scan"))
          .Set("object", Value(int64_t{i % 4}))
          .Set("brightness", Value(static_cast<double>(i % 9)))
          .Set("t", Value(int64_t{i}))
          .Set("value", Value(static_cast<double>(i)))
          .Set("v", Value(static_cast<double>(i)));
      source->channel()->Push(Token(RecordPtr(std::move(record))), arrival);
    }
    source->channel()->Close();
  }
}

/// Feed the LRB Source with a constant-rate generated workload.
void FeedLrbSource(const BuiltinGraph& graph, Timestamp* end) {
  StreamSourceActor* source = nullptr;
  for (const auto& actor : graph.workflow->actors()) {
    if (auto* s = dynamic_cast<StreamSourceActor*>(actor.get())) {
      source = s;
      break;
    }
  }
  ASSERT_NE(source, nullptr) << graph.name;
  lrb::GeneratorOptions workload;
  workload.duration = Seconds(20);
  workload.initial_rate = 25.0;
  workload.rate_slope_per_sec = 0.0;
  workload.max_rate = 25.0;
  lrb::Generator generator(workload);
  const Trace trace = generator.Generate();
  *end = trace.EndTime();
  source->channel()->PushTrace(trace);
  source->channel()->Close();
}

/// Max observed high-water mark across the workflow's top-level channels,
/// asserting each bounded channel stayed within its planned capacity.
uint64_t CheckHighWaterAgainstPlan(const BuiltinGraph& graph,
                                   const CapacityPlan& plan) {
  uint64_t peak = 0;
  for (const ChannelSpec& ch : graph.workflow->channels()) {
    const Receiver* receiver = ch.to->receiver(ch.to_channel);
    if (receiver == nullptr) {
      ADD_FAILURE() << graph.name << ": no receiver on "
                    << ch.to->FullName();
      continue;
    }
    peak = std::max(peak, receiver->high_water_mark());
    const size_t bound = plan.CapacityFor(ch.to->FullName(), ch.to_channel);
    if (bound > 0) {
      EXPECT_LE(receiver->high_water_mark(), bound)
          << graph.name << ": " << ch.from->FullName() << " -> "
          << ch.to->FullName() << "[" << ch.to_channel << "]";
    }
  }
  return peak;
}

TEST(CapacityRuntimeTest, BuiltinGraphHighWaterNeverExceedsPlan) {
  for (BuiltinGraph& graph : BuildBuiltinGraphs()) {
    SCOPED_TRACE(graph.name);
    const CapacityPlan plan =
        PlanCapacity(*graph.workflow, AnalysisOptionsFor(graph));

    Timestamp feed_end = Timestamp::Seconds(10);
    const bool is_lrb = graph.name.rfind("lrb", 0) == 0;
    if (is_lrb) {
      FeedLrbSource(graph, &feed_end);
    } else {
      FeedExampleSources(graph, 10.0);
    }

    std::unique_ptr<Director> director = DirectorFor(graph);
    director->set_capacity_plan(plan);
    VirtualClock clock;
    const CostModel fallback;
    const CostModel* costs =
        graph.cost_model ? graph.cost_model.get() : &fallback;
    ASSERT_TRUE(
        director->Initialize(graph.workflow, &clock, costs).ok());
    // Run past the feed plus the longest (60 s) window so tumbling time
    // windows get to close and drain.
    const Status run =
        director->Run(feed_end + Seconds(120));
    ASSERT_TRUE(run.ok()) << run.ToString();

    const uint64_t peak = CheckHighWaterAgainstPlan(graph, plan);
    EXPECT_GT(peak, 0u) << "no event ever queued — vacuous check";
    ASSERT_TRUE(director->Wrapup().ok());
  }
}

TEST(CapacityRuntimeTest, DirectorAppliesPlanToReceivers) {
  std::vector<BuiltinGraph> graphs = BuildBuiltinGraphs();
  BuiltinGraph& graph = graphs.front();  // quickstart
  const CapacityPlan plan =
      PlanCapacity(*graph.workflow, AnalysisOptionsFor(graph));
  std::unique_ptr<Director> director = DirectorFor(graph);
  director->set_capacity_plan(plan);
  VirtualClock clock;
  const CostModel costs;
  ASSERT_TRUE(director->Initialize(graph.workflow, &clock, &costs).ok());
  bool saw_bounded = false;
  for (const ChannelSpec& ch : graph.workflow->channels()) {
    const Receiver* receiver = ch.to->receiver(ch.to_channel);
    ASSERT_NE(receiver, nullptr);
    const size_t bound = plan.CapacityFor(ch.to->FullName(), ch.to_channel);
    EXPECT_EQ(receiver->capacity(), bound);
    saw_bounded |= bound > 0;
    // SCWF keeps the bound advisory: the planner's claim is verified, not
    // enforced.
    EXPECT_EQ(receiver->overflow_policy(), OverflowPolicy::kUnbounded);
  }
  EXPECT_TRUE(saw_bounded);
  ASSERT_TRUE(director->Wrapup().ok());
}

TEST(CapacityRuntimeTest, WithoutPlanReceiversStayUnbounded) {
  std::vector<BuiltinGraph> graphs = BuildBuiltinGraphs();
  BuiltinGraph& graph = graphs.front();
  std::unique_ptr<Director> director = DirectorFor(graph);
  VirtualClock clock;
  const CostModel costs;
  ASSERT_TRUE(director->Initialize(graph.workflow, &clock, &costs).ok());
  for (const ChannelSpec& ch : graph.workflow->channels()) {
    const Receiver* receiver = ch.to->receiver(ch.to_channel);
    ASSERT_NE(receiver, nullptr);
    EXPECT_EQ(receiver->capacity(), 0u);
  }
  ASSERT_TRUE(director->Wrapup().ok());
}

TEST(CapacityRuntimeTest, ScwfSurfacesQueueHighWaterInStatistics) {
  std::vector<BuiltinGraph> graphs = BuildBuiltinGraphs();
  BuiltinGraph& graph = graphs.front();  // quickstart, SCWF + QBS
  FeedExampleSources(graph, 5.0);
  auto director = std::make_unique<SCWFDirector>(SchedulerFor(graph));
  VirtualClock clock;
  const CostModel costs;
  ASSERT_TRUE(director->Initialize(graph.workflow, &clock, &costs).ok());
  ASSERT_TRUE(director->Run(Timestamp::Seconds(30)).ok());
  uint64_t max_high_water = 0;
  for (const auto& actor : graph.workflow->actors()) {
    max_high_water = std::max(
        max_high_water, director->stats().Get(actor.get()).queue_high_water);
  }
  EXPECT_GT(max_high_water, 0u);
  ASSERT_TRUE(director->Wrapup().ok());
}

// ---- PNCWF backpressure under a deliberately tiny capacity ----

struct BackpressureRig {
  Workflow wf{"bp"};
  std::shared_ptr<PushChannel> feed = std::make_shared<PushChannel>();
  StreamSourceActor* src;
  MapActor* map;
  CollectorSink* sink;
  VirtualClock clock;
  CostModel cm;

  // max_batch 1: the simulated director defers actors *between* firings,
  // so a source that injects its whole backlog in one firing would
  // overshoot any bound. One event per firing gives the per-event producer
  // the backpressure mechanism actually throttles.
  explicit BackpressureRig(size_t max_batch = 1) {
    src = wf.AddActor<StreamSourceActor>("src", feed, max_batch);
    map = wf.AddActor<MapActor>(
        "map", [](const Token& t) { return Token(t.AsInt() + 1); });
    sink = wf.AddActor<CollectorSink>("sink");
    CWF_CHECK(wf.Connect(src->out(), map->in()).ok());
    CWF_CHECK(wf.Connect(map->out(), sink->in()).ok());
  }

  CapacityPlan TinyPlanFor(const char* consumer, size_t capacity) {
    CapacityPlan plan;
    plan.workflow = wf.name();
    plan.director = "PNCWF";
    analysis::ChannelCapacity ch;
    ch.producer = "src.out";
    ch.consumer = consumer;
    ch.to_channel = 0;
    ch.capacity = capacity;
    ch.bounded = true;
    plan.channels.push_back(ch);
    return plan;
  }
};

TEST(CapacityRuntimeTest, PncwfSimulatedBackpressureBoundsQueue) {
  BackpressureRig rig;
  // Slow consumer, burst arrival: without a bound the map queue would
  // spike to 50.
  rig.cm.SetActorCost("map", {100000, 0, 0});
  for (int i = 0; i < 50; ++i) {
    rig.feed->Push(Token(i), Timestamp(0));
  }
  rig.feed->Close();

  PNCWFOptions options;
  options.mode = PNCWFMode::kSimulatedThreads;
  PNCWFDirector director(options);
  director.set_capacity_plan(rig.TinyPlanFor("map.in", 4));
  ASSERT_TRUE(director.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(director.Run(Timestamp::Max()).ok());

  // Backpressure held the producer: depth never passed the bound, yet
  // every event was eventually delivered.
  const Receiver* receiver = rig.map->in()->receiver(0);
  ASSERT_NE(receiver, nullptr);
  EXPECT_EQ(receiver->overflow_policy(), OverflowPolicy::kBlock);
  EXPECT_LE(receiver->high_water_mark(), 4u);
  EXPECT_EQ(rig.sink->TakeSnapshot().size(), 50u);
  ASSERT_TRUE(director.Wrapup().ok());
}

TEST(CapacityRuntimeTest, PncwfOsThreadsBlockingPutBoundsQueue) {
  BackpressureRig rig;
  for (int i = 0; i < 200; ++i) {
    rig.feed->Push(Token(i), Timestamp(0));
  }
  rig.feed->Close();

  PNCWFOptions options;
  options.mode = PNCWFMode::kOsThreads;
  PNCWFDirector director(options);
  director.set_capacity_plan(rig.TinyPlanFor("map.in", 8));
  RealClock real;
  ASSERT_TRUE(director.Initialize(&rig.wf, &real, nullptr).ok());
  ASSERT_TRUE(director.Run(Timestamp::Max()).ok());

  const Receiver* receiver = rig.map->in()->receiver(0);
  ASSERT_NE(receiver, nullptr);
  EXPECT_LE(receiver->high_water_mark(), 8u);
  EXPECT_EQ(rig.sink->TakeSnapshot().size(), 200u);
  ASSERT_TRUE(director.Wrapup().ok());
}

}  // namespace
}  // namespace cwf

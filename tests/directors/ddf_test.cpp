#include <gtest/gtest.h>

#include "actors/library.h"
#include "directors/ddf_director.h"
#include "stream/stream_source.h"

namespace cwf {
namespace {

TEST(DDFTest, RunsPipelineToQuiescence) {
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* dbl = wf.AddActor<MapActor>(
      "dbl", [](const Token& t) { return Token(t.AsInt() * 2); });
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(src->out(), dbl->in()).ok());
  ASSERT_TRUE(wf.Connect(dbl->out(), sink->in()).ok());
  for (int i = 1; i <= 5; ++i) {
    feed->Push(Token(i), Timestamp::Seconds(i));
  }
  feed->Close();
  VirtualClock clock;
  DDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  auto got = sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[4].token.AsInt(), 10);
  EXPECT_GE(d.total_firings(), 10u);
}

TEST(DDFTest, AdvancesVirtualClockToSourceArrivals) {
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  feed->Push(Token(1), Timestamp::Seconds(100));
  feed->Close();
  VirtualClock clock;
  DDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(sink->count(), 1u);
  EXPECT_EQ(clock.Now(), Timestamp::Seconds(100));
}

TEST(DDFTest, HorizonStopsBeforeFutureArrivals) {
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  feed->Push(Token(1), Timestamp::Seconds(10));
  feed->Push(Token(2), Timestamp::Seconds(200));
  feed->Close();
  VirtualClock clock;
  DDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Seconds(50)).ok());
  EXPECT_EQ(sink->count(), 1u);
}

TEST(DDFTest, DataDependentRoutingDecisionPoint) {
  // The DDF use case: a filter with data-dependent production rate.
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* odd = wf.AddActor<FilterActor>(
      "odd", [](const Token& t) { return t.AsInt() % 2 == 1; });
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(src->out(), odd->in()).ok());
  ASSERT_TRUE(wf.Connect(odd->out(), sink->in()).ok());
  for (int i = 1; i <= 6; ++i) {
    feed->Push(Token(i), Timestamp::Seconds(1));
  }
  feed->Close();
  VirtualClock clock;
  clock.AdvanceTo(Timestamp::Seconds(1));
  DDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(sink->count(), 3u);
}

TEST(DDFTest, PostfireFalseHaltsActor) {
  class OneShot : public Actor {
   public:
    OneShot() : Actor("oneshot") { out_ = AddOutputPort("out"); }
    Result<bool> Prefire() override { return true; }
    Status Fire() override {
      Send(out_, Token(1));
      return Status::OK();
    }
    Result<bool> Postfire() override { return false; }  // halt after one shot
    OutputPort* out_;
  };
  Workflow wf("w");
  auto* one = wf.AddActor<OneShot>();
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(one->out_, sink->in()).ok());
  VirtualClock clock;
  DDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(sink->count(), 1u);
  EXPECT_TRUE(d.IsHalted(one));
}

TEST(DDFTest, LivelockGuardTrips) {
  class Spinner : public Actor {
   public:
    Spinner() : Actor("spin") { AddOutputPort("out"); }
    Result<bool> Prefire() override { return true; }
    Status Fire() override { return Status::OK(); }
  };
  Workflow wf("w");
  wf.AddActor<Spinner>();
  VirtualClock clock;
  DDFOptions opts;
  opts.max_firings_per_run = 100;
  DDFDirector d(opts);
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  EXPECT_EQ(d.Run(Timestamp::Max()).code(), StatusCode::kResourceExhausted);
}

TEST(DDFTest, WaveStampsPropagateAsChildren) {
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* fan = wf.AddActor<FlatMapActor>("fan", [](const Token& t) {
    return std::vector<Token>{t, t, t};
  });
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(src->out(), fan->in()).ok());
  ASSERT_TRUE(wf.Connect(fan->out(), sink->in()).ok());
  feed->Push(Token(7), Timestamp::Seconds(1));
  feed->Close();
  VirtualClock clock;
  DDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  auto got = sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 3u);
  // All three share the same root; serials 1..3; only #3 is last-in-wave.
  EXPECT_EQ(got[0].wave.root(), got[2].wave.root());
  EXPECT_EQ(got[0].wave.path(), std::vector<uint32_t>{1});
  EXPECT_EQ(got[2].wave.path(), std::vector<uint32_t>{3});
}

TEST(DDFTest, RunBeforeInitializeFails) {
  DDFDirector d;
  EXPECT_EQ(d.Run(Timestamp::Max()).code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace cwf

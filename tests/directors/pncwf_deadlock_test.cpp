// Runtime artificial-deadlock watchdog of the PNCWF director: an
// undersized capacity plan that blocks the producer before the consumer's
// first window can form must surface as a CWF6005 FailedPrecondition (not
// a hang), in both OS-thread and simulated-thread mode; the same workflow
// under a synthesized (liveness-ensured) plan must run to completion.

#include <gtest/gtest.h>

#include <string>

#include "actors/library.h"
#include "analysis/capacity_planner.h"
#include "directors/pncwf_director.h"
#include "stream/stream_source.h"

namespace cwf {
namespace {

// src -> map -> win(Tuples(8,8)) -> sink with the map->win channel
// undersized: after `cap` events the map thread blocks in Put while win
// still needs 8 events for its first window — a textbook artificial
// deadlock under blocking backpressure.
struct DeadlockRig {
  Workflow wf{"w"};
  std::shared_ptr<PushChannel> feed = std::make_shared<PushChannel>();
  StreamSourceActor* src = nullptr;
  MapActor* map = nullptr;
  WindowFnActor* win = nullptr;
  CollectorSink* sink = nullptr;

  explicit DeadlockRig(int events) {
    src = wf.AddActor<StreamSourceActor>("src", feed);
    map = wf.AddActor<MapActor>(
        "map", [](const Token& t) { return Token(t.AsInt()); });
    win = wf.AddActor<WindowFnActor>(
        "win", WindowSpec::Tuples(8, 8).DeleteUsedEvents(true),
        [](const Window& w, std::vector<Token>* out) {
          int64_t total = 0;
          for (const auto& e : w.events) {
            total += e.token.AsInt();
          }
          out->push_back(Token(total));
          return Status::OK();
        });
    sink = wf.AddActor<CollectorSink>("sink");
    EXPECT_TRUE(wf.Connect(src->out(), map->in()).ok());
    EXPECT_TRUE(wf.Connect(map->out(), win->in()).ok());
    EXPECT_TRUE(wf.Connect(win->out(), sink->in()).ok());
    for (int i = 0; i < events; ++i) {
      feed->Push(Token(i), Timestamp(0));
    }
    feed->Close();
  }

  analysis::CapacityPlan UndersizedPlan(size_t cap) const {
    analysis::CapacityPlan plan;
    analysis::ChannelCapacity ch;
    ch.producer = "map.out";
    ch.consumer = "win.in";
    ch.to_channel = 0;
    ch.capacity = cap;
    ch.bounded = true;
    plan.channels.push_back(ch);
    return plan;
  }
};

TEST(PNCWFDeadlockTest, InitializeRefusesProvablyDeadlockingPlan) {
  DeadlockRig rig(32);
  RealClock clock;
  PNCWFOptions options;
  options.mode = PNCWFMode::kOsThreads;
  PNCWFDirector d(options);
  d.set_capacity_plan(rig.UndersizedPlan(2));
  const Status status = d.Initialize(&rig.wf, &clock, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("CWF6001"), std::string::npos);
  EXPECT_NE(status.message().find("map"), std::string::npos);
}

TEST(PNCWFDeadlockTest, WatchdogTurnsOsThreadHangIntoCWF6005) {
  DeadlockRig rig(32);
  RealClock clock;
  PNCWFOptions options;
  options.mode = PNCWFMode::kOsThreads;
  PNCWFDirector d(options);
  d.set_capacity_plan(rig.UndersizedPlan(2));
  // Bypass the static Initialize gate so the runtime watchdog (not the
  // liveness pass) is what catches the deadlock.
  d.set_static_analysis_enabled(false);
  std::string report;
  d.wait_graph()->SetReportHandlerForTest(
      [&report](const std::string& r) { report = r; });
  ASSERT_TRUE(d.Initialize(&rig.wf, &clock, nullptr).ok());
  const Status status = d.Run(Timestamp::Max());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("CWF6005"), std::string::npos);
  // The confirmed report names the blocked cycle's actors and channel.
  EXPECT_NE(report.find("map"), std::string::npos);
  EXPECT_NE(report.find("win"), std::string::npos);
  EXPECT_NE(report.find("map.out -> win.in[0]"), std::string::npos);
  // All threads were stopped and the wait graph drained.
  EXPECT_EQ(d.wait_graph()->BlockedCount(), 0u);
}

TEST(PNCWFDeadlockTest, SimulatedModeReportsCWF6005Deterministically) {
  DeadlockRig rig(32);
  VirtualClock clock;
  CostModel cost_model;
  PNCWFOptions options;
  options.mode = PNCWFMode::kSimulatedThreads;
  PNCWFDirector d(options);
  d.set_capacity_plan(rig.UndersizedPlan(2));
  d.set_static_analysis_enabled(false);
  ASSERT_TRUE(d.Initialize(&rig.wf, &clock, &cost_model).ok());
  const Status status = d.Run(Timestamp::Max());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("CWF6005"), std::string::npos);
  EXPECT_NE(status.message().find("map.out -> win.in[0]"), std::string::npos);
}

TEST(PNCWFDeadlockTest, SynthesizedCapacitiesRunToCompletion) {
  DeadlockRig rig(32);
  // The planner's liveness synthesis must have raised every bound at least
  // to first-window demand, so the same workflow drains completely.
  analysis::AnalysisOptions options;
  options.target_director = "PNCWF";
  options.source_rates = {{"src", analysis::RateInterval::Exact(100.0)}};
  const analysis::CapacityPlan plan = analysis::PlanCapacity(rig.wf, options);
  EXPECT_EQ(plan.liveness_verdict, "provably-live");
  RealClock clock;
  PNCWFOptions pncwf;
  pncwf.mode = PNCWFMode::kOsThreads;
  PNCWFDirector d(pncwf);
  d.set_capacity_plan(plan);
  ASSERT_TRUE(d.Initialize(&rig.wf, &clock, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  // 32 events through tumbling 8-windows: 4 sums, total 0+1+...+31.
  auto got = rig.sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 4u);
  int64_t grand = 0;
  for (const auto& r : got) {
    grand += r.token.AsInt();
  }
  EXPECT_EQ(grand, 31 * 32 / 2);
}

TEST(PNCWFDeadlockTest, ManualLivePlanStillDrains) {
  // An installed plan at exactly first-window demand is live (windows form
  // one at a time) and must not trip the watchdog.
  DeadlockRig rig(32);
  RealClock clock;
  PNCWFOptions options;
  options.mode = PNCWFMode::kOsThreads;
  PNCWFDirector d(options);
  d.set_capacity_plan(rig.UndersizedPlan(8));
  ASSERT_TRUE(d.Initialize(&rig.wf, &clock, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(rig.sink->count(), 4u);
}

}  // namespace
}  // namespace cwf

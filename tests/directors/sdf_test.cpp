#include <gtest/gtest.h>

#include "actors/library.h"
#include "directors/sdf_director.h"

namespace cwf {
namespace {

/// Produces `rate` constant tokens per firing, `firings` times.
class RateSource : public Actor {
 public:
  RateSource(std::string name, int64_t rate, int64_t firings)
      : Actor(std::move(name)), rate_(rate), firings_(firings) {
    out_ = AddOutputPort("out");
  }
  Result<bool> Prefire() override { return fired_ < firings_; }
  Status Fire() override {
    for (int64_t i = 0; i < rate_; ++i) {
      Send(out_, Token(counter_++));
    }
    ++fired_;
    return Status::OK();
  }
  int64_t ProductionRate(const OutputPort*) const override { return rate_; }
  OutputPort* out_;

 private:
  int64_t rate_;
  int64_t firings_;
  int64_t fired_ = 0;
  int64_t counter_ = 0;
};

/// Consumes a window of `rate` tokens per firing and emits their sum.
class BlockSum : public WindowFnActor {
 public:
  BlockSum(std::string name, int64_t rate)
      : WindowFnActor(std::move(name),
                      WindowSpec::Tuples(rate, rate).DeleteUsedEvents(true),
                      [](const Window& w, std::vector<Token>* out) {
                        int64_t sum = 0;
                        for (const auto& e : w.events) {
                          sum += e.token.AsInt();
                        }
                        out->push_back(Token(sum));
                        return Status::OK();
                      }) {}
};

TEST(SDFTest, SolvesBalanceEquations) {
  // src(2/firing) -> sum(consumes 3): repetitions src=3, sum=2.
  Workflow wf("w");
  auto* src = wf.AddActor<RateSource>("src", 2, 100);
  auto* sum = wf.AddActor<BlockSum>("sum", 3);
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(src->out_, sum->in()).ok());
  ASSERT_TRUE(wf.Connect(sum->out(), sink->in()).ok());
  VirtualClock clock;
  SDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  EXPECT_EQ(d.Repetitions(src).value(), 3);
  EXPECT_EQ(d.Repetitions(sum).value(), 2);
  EXPECT_EQ(d.Repetitions(sink).value(), 2);
  EXPECT_EQ(d.schedule().size(), 7u);
}

TEST(SDFTest, ExecutesScheduleCorrectly) {
  Workflow wf("w");
  auto* src = wf.AddActor<RateSource>("src", 2, 3);  // 6 tokens total: 0..5
  auto* sum = wf.AddActor<BlockSum>("sum", 3);
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(src->out_, sum->in()).ok());
  ASSERT_TRUE(wf.Connect(sum->out(), sink->in()).ok());
  VirtualClock clock;
  SDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  auto got = sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].token.AsInt(), 0 + 1 + 2);
  EXPECT_EQ(got[1].token.AsInt(), 3 + 4 + 5);
}

TEST(SDFTest, UniformRatePipelineHasUnitRepetitions) {
  Workflow wf("w");
  auto* src = wf.AddActor<RateSource>("src", 1, 2);
  auto* map = wf.AddActor<MapActor>(
      "map", [](const Token& t) { return Token(t.AsInt() + 1); });
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(src->out_, map->in()).ok());
  ASSERT_TRUE(wf.Connect(map->out(), sink->in()).ok());
  VirtualClock clock;
  SDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  EXPECT_EQ(d.Repetitions(src).value(), 1);
  EXPECT_EQ(d.Repetitions(map).value(), 1);
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(sink->count(), 2u);
}

TEST(SDFTest, RejectsTimeWindows) {
  Workflow wf("w");
  auto* src = wf.AddActor<RateSource>("src", 1, 1);
  auto* agg = wf.AddActor<WindowFnActor>(
      "agg", WindowSpec::Time(Seconds(60), Seconds(60)),
      [](const Window&, std::vector<Token>*) { return Status::OK(); });
  ASSERT_TRUE(wf.Connect(src->out_, agg->in()).ok());
  VirtualClock clock;
  SDFDirector d;
  EXPECT_EQ(d.Initialize(&wf, &clock, nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(SDFTest, SlidingWindowStepDefinesConsumption) {
  // A sliding window of size 4, step 2 consumes 2 fresh tokens per firing in
  // steady state: src produces 1/firing => src repeats 2x per sum firing.
  Workflow wf("w");
  auto* src = wf.AddActor<RateSource>("src", 1, 100);
  auto* sum = wf.AddActor<WindowFnActor>(
      "sum", WindowSpec::Tuples(4, 2),
      [](const Window&, std::vector<Token>*) { return Status::OK(); });
  ASSERT_TRUE(wf.Connect(src->out_, sum->in()).ok());
  VirtualClock clock;
  SDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  EXPECT_EQ(d.Repetitions(src).value(), 2);
  EXPECT_EQ(d.Repetitions(sum).value(), 1);
}

TEST(SDFTest, MultiComponentGraphsSolveIndependently) {
  Workflow wf("w");
  auto* s1 = wf.AddActor<RateSource>("s1", 1, 1);
  auto* k1 = wf.AddActor<CollectorSink>("k1");
  auto* s2 = wf.AddActor<RateSource>("s2", 3, 1);
  auto* k2 = wf.AddActor<WindowFnActor>(
      "k2", WindowSpec::Tuples(3, 3).DeleteUsedEvents(true),
      [](const Window&, std::vector<Token>*) { return Status::OK(); });
  ASSERT_TRUE(wf.Connect(s1->out_, k1->in()).ok());
  ASSERT_TRUE(wf.Connect(s2->out_, k2->in()).ok());
  VirtualClock clock;
  SDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  EXPECT_EQ(d.Repetitions(s1).value(), 1);
  EXPECT_EQ(d.Repetitions(s2).value(), 1);
  EXPECT_EQ(d.Repetitions(k2).value(), 1);
}

TEST(SDFTest, StarvedScheduleTerminates) {
  // Source stops after 1 firing even though the schedule wants 3.
  Workflow wf("w");
  auto* src = wf.AddActor<RateSource>("src", 1, 1);
  auto* sum = wf.AddActor<BlockSum>("sum", 3);
  ASSERT_TRUE(wf.Connect(src->out_, sum->in()).ok());
  VirtualClock clock;
  SDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());  // must not hang
  EXPECT_EQ(src->total_firings(), 1u);
  EXPECT_EQ(sum->total_firings(), 0u);
}

}  // namespace
}  // namespace cwf

namespace cwf {
namespace {

TEST(SDFTest, InconsistentRatesRejected) {
  // Diamond with mismatched rates: src -(1)-> a -(1)-> sink and
  // src -(2)-> b -(1)-> sink cannot balance.
  Workflow wf("bad");
  auto* src = wf.AddActor<RateSource>("src", 1, 1);
  auto* a = wf.AddActor<MapActor>("a", [](const Token& t) { return t; });
  auto* b = wf.AddActor<BlockSum>("b", 2);  // consumes 2 per firing
  auto* sink = wf.AddActor<WindowFnActor>(
      "sink", WindowSpec::Tuples(1, 1).DeleteUsedEvents(true),
      [](const Window&, std::vector<Token>*) { return Status::OK(); });
  ASSERT_TRUE(wf.Connect(src->out_, a->in()).ok());
  ASSERT_TRUE(wf.Connect(src->out_, b->in()).ok());
  ASSERT_TRUE(wf.Connect(a->out(), sink->in()).ok());
  ASSERT_TRUE(wf.Connect(b->out(), sink->in()).ok());
  VirtualClock clock;
  SDFDirector d;
  // a fires 1x, b fires 0.5x per src firing; both feed `sink` whose single
  // port demands equal rates -> inconsistent.
  EXPECT_EQ(d.Initialize(&wf, &clock, nullptr).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cwf

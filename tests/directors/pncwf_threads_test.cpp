// OS-thread mode of the PNCWF director: one std::thread per actor with
// blocking windowed receivers on a real clock.

#include <gtest/gtest.h>

#include "actors/library.h"
#include "directors/pncwf_director.h"
#include "stream/stream_source.h"

namespace cwf {
namespace {

PNCWFOptions ThreadMode() {
  PNCWFOptions o;
  o.mode = PNCWFMode::kOsThreads;
  return o;
}

TEST(PNCWFThreadsTest, DrainsFiniteStream) {
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* map = wf.AddActor<MapActor>(
      "map", [](const Token& t) { return Token(t.AsInt() * 3); });
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(src->out(), map->in()).ok());
  ASSERT_TRUE(wf.Connect(map->out(), sink->in()).ok());
  for (int i = 0; i < 20; ++i) {
    feed->Push(Token(i), Timestamp(0));  // all available immediately
  }
  feed->Close();
  RealClock clock;
  PNCWFDirector d(ThreadMode());
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  auto got = sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 20u);
  // Per-channel FIFO order is preserved.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(got[i].token.AsInt(), i * 3);
  }
}

TEST(PNCWFThreadsTest, FanOutDeliversToAllBranches) {
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* s1 = wf.AddActor<CollectorSink>("s1");
  auto* s2 = wf.AddActor<CollectorSink>("s2");
  ASSERT_TRUE(wf.Connect(src->out(), s1->in()).ok());
  ASSERT_TRUE(wf.Connect(src->out(), s2->in()).ok());
  for (int i = 0; i < 10; ++i) {
    feed->Push(Token(i), Timestamp(0));
  }
  feed->Close();
  RealClock clock;
  PNCWFDirector d(ThreadMode());
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(s1->count(), 10u);
  EXPECT_EQ(s2->count(), 10u);
}

TEST(PNCWFThreadsTest, WindowedActorAggregatesConcurrently) {
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* sum = wf.AddActor<WindowFnActor>(
      "sum", WindowSpec::Tuples(5, 5).DeleteUsedEvents(true),
      [](const Window& w, std::vector<Token>* out) {
        int64_t total = 0;
        for (const auto& e : w.events) {
          total += e.token.AsInt();
        }
        out->push_back(Token(total));
        return Status::OK();
      });
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(src->out(), sum->in()).ok());
  ASSERT_TRUE(wf.Connect(sum->out(), sink->in()).ok());
  for (int i = 1; i <= 25; ++i) {
    feed->Push(Token(i), Timestamp(0));
  }
  feed->Close();
  RealClock clock;
  PNCWFDirector d(ThreadMode());
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  auto got = sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 5u);
  int64_t grand = 0;
  for (const auto& r : got) {
    grand += r.token.AsInt();
  }
  EXPECT_EQ(grand, 25 * 26 / 2);
}

TEST(PNCWFThreadsTest, TimedWindowClosedByBlockedThreadTimeout) {
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* win = wf.AddActor<WindowFnActor>(
      "win", WindowSpec::Time(Millis(50), Millis(50)),
      [](const Window& w, std::vector<Token>* out) {
        out->push_back(Token(static_cast<int64_t>(w.size())));
        return Status::OK();
      });
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(src->out(), win->in()).ok());
  ASSERT_TRUE(wf.Connect(win->out(), sink->in()).ok());
  feed->Push(Token(1), Timestamp(0));
  feed->Push(Token(2), Timestamp(0));
  feed->Close();
  RealClock clock;
  PNCWFDirector d(ThreadMode());
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  // The window can only close via the blocked reader's timeout handling.
  ASSERT_TRUE(d.Run(clock.Now() + Millis(400)).ok());
  auto got = sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].token.AsInt(), 2);
}

TEST(PNCWFThreadsTest, RequiresRealClock) {
  Workflow wf("w");
  VirtualClock clock;
  PNCWFDirector d(ThreadMode());
  EXPECT_EQ(d.Initialize(&wf, &clock, nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(PNCWFThreadsTest, ReinitializeAfterRun) {
  // The director must be reusable: run, then initialize a new workflow.
  auto run_once = [](PNCWFDirector* d) {
    Workflow wf("w");
    auto feed = std::make_shared<PushChannel>();
    auto* src = wf.AddActor<StreamSourceActor>("src", feed);
    auto* sink = wf.AddActor<CollectorSink>("sink");
    CWF_CHECK(wf.Connect(src->out(), sink->in()).ok());
    feed->Push(Token(1), Timestamp(0));
    feed->Close();
    RealClock clock;
    CWF_CHECK(d->Initialize(&wf, &clock, nullptr).ok());
    CWF_CHECK(d->Run(Timestamp::Max()).ok());
    return sink->count();
  };
  PNCWFDirector d(ThreadMode());
  EXPECT_EQ(run_once(&d), 1u);
  EXPECT_EQ(run_once(&d), 1u);
}

}  // namespace
}  // namespace cwf

// The analysis->runtime schema edge, both directions: Director::Initialize
// refuses statically mistyped graphs with an attributed CWF70xx error, and
// debug builds (CWF_SCHEMA_CHECK) catch producers that lie about their
// declared schema at deposit time with a CWF7008 abort naming the channel.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "actors/library.h"
#include "core/schema.h"
#include "directors/ddf_director.h"
#include "stream/stream_source.h"

namespace cwf {
namespace {

TEST(SchemaRuntimeTest, InitializeRefusesMistypedGraphNamingTheChannel) {
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* sink = wf.AddActor<CollectorSink>("sink");
  src->out()->set_schema(TokenType::Str());
  sink->in()->set_required_schema(TokenType::Int());
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  feed->Close();
  VirtualClock clock;
  DDFDirector d;
  const Status status = d.Initialize(&wf, &clock, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("CWF7001"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("src.out"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("sink.in"), std::string::npos)
      << status.message();
}

TEST(SchemaRuntimeTest, InitializeRefusesMissingFieldNamingIt) {
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* sink = wf.AddActor<CollectorSink>("sink");
  RecordSchema have;
  have.Int("time");
  src->out()->set_schema(TokenType::Record(have));
  RecordSchema need;
  need.Int("time").Double("speed");
  sink->in()->set_required_schema(TokenType::Record(need));
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  feed->Close();
  VirtualClock clock;
  DDFDirector d;
  const Status status = d.Initialize(&wf, &clock, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("CWF7003"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("speed"), std::string::npos)
      << status.message();
}

TEST(SchemaRuntimeTest, TypedGraphRunsCleanlyWithEnforcementAttached) {
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* dbl = wf.AddActor<MapActor>(
      "dbl", [](const Token& t) { return Token(t.AsInt() * 2); });
  auto* sink = wf.AddActor<CollectorSink>("sink");
  src->out()->set_schema(TokenType::Int());
  dbl->out()->set_schema(TokenType::Int());
  sink->in()->set_required_schema(TokenType::Int());
  ASSERT_TRUE(wf.Connect(src->out(), dbl->in()).ok());
  ASSERT_TRUE(wf.Connect(dbl->out(), sink->in()).ok());
  for (int i = 1; i <= 5; ++i) {
    feed->Push(Token(i), Timestamp::Seconds(i));
  }
  feed->Close();
  VirtualClock clock;
  DDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(sink->count(), 5u);
}

#if CWF_SCHEMA_CHECK_IS_ON

TEST(SchemaRuntimeTest, LyingProducerFailsRunWithCWF7008AtTheReceiver) {
  // The producer passes static analysis (declared int) but emits strings:
  // exactly the class of bug the deposit check turns from a CHECK-fail deep
  // inside the consumer into an attributed channel error.
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* lie = wf.AddActor<MapActor>(
      "lie", [](const Token&) { return Token("oops"); });
  auto* sink = wf.AddActor<CollectorSink>("sink");
  src->out()->set_schema(TokenType::Int());
  lie->out()->set_schema(TokenType::Int());
  sink->in()->set_required_schema(TokenType::Int());
  ASSERT_TRUE(wf.Connect(src->out(), lie->in()).ok());
  ASSERT_TRUE(wf.Connect(lie->out(), sink->in()).ok());
  feed->Push(Token(1), Timestamp::Seconds(1));
  feed->Close();
  VirtualClock clock;
  DDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  const Status run = d.Run(Timestamp::Max());
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.message().find("CWF7008"), std::string::npos)
      << run.message();
  EXPECT_NE(run.message().find("lie.out"), std::string::npos)
      << run.message();
}

TEST(SchemaRuntimeDeathTest, MistypedExternalTupleAbortsAtIngestion) {
  // The push channel inherits the source's declared schema at Initialize,
  // so a malformed external tuple dies at the workflow boundary instead of
  // inside whatever actor first reads the payload.
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* sink = wf.AddActor<CollectorSink>("sink");
  src->out()->set_schema(TokenType::Int());
  sink->in()->set_required_schema(TokenType::Int());
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  VirtualClock clock;
  DDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  EXPECT_DEATH(feed->Push(Token("oops"), Timestamp::Seconds(1)),
               "CWF7008.*src\\.out");
}

#endif  // CWF_SCHEMA_CHECK_IS_ON

}  // namespace
}  // namespace cwf

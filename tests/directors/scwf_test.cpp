#include <gtest/gtest.h>

#include "actors/library.h"
#include "directors/scwf_director.h"
#include "stafilos/fifo_scheduler.h"
#include "stafilos/qbs_scheduler.h"
#include "stream/stream_source.h"

namespace cwf {
namespace {

struct Rig {
  Workflow wf{"w"};
  std::shared_ptr<PushChannel> feed = std::make_shared<PushChannel>();
  StreamSourceActor* src;
  MapActor* map;
  CollectorSink* sink;
  VirtualClock clock;
  CostModel cm;

  Rig() {
    src = wf.AddActor<StreamSourceActor>("src", feed);
    map = wf.AddActor<MapActor>(
        "map", [](const Token& t) { return Token(t.AsInt() + 100); });
    sink = wf.AddActor<CollectorSink>("sink");
    CWF_CHECK(wf.Connect(src->out(), map->in()).ok());
    CWF_CHECK(wf.Connect(map->out(), sink->in()).ok());
  }
};

TEST(SCWFTest, ProcessesStreamEndToEnd) {
  Rig rig;
  for (int i = 0; i < 10; ++i) {
    rig.feed->Push(Token(i), Timestamp::Seconds(i));
  }
  rig.feed->Close();
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  auto got = rig.sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 10u);
  EXPECT_EQ(got[0].token.AsInt(), 100);
  EXPECT_GT(d.total_firings(), 0u);
  EXPECT_GT(d.director_iterations(), 0u);
}

TEST(SCWFTest, RequiresCostModelOnVirtualClock) {
  Rig rig;
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  EXPECT_EQ(d.Initialize(&rig.wf, &rig.clock, nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(SCWFTest, StatisticsModuleTracksCostsAndSelectivity) {
  Rig rig;
  rig.cm.SetActorCost("map", {500, 0, 0});
  for (int i = 0; i < 20; ++i) {
    rig.feed->Push(Token(i), Timestamp::Seconds(i));
  }
  rig.feed->Close();
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  const ActorStats& s = d.stats().Get(rig.map);
  EXPECT_EQ(s.invocations, 20u);
  EXPECT_EQ(s.events_consumed, 20u);
  EXPECT_EQ(s.events_produced, 20u);
  EXPECT_DOUBLE_EQ(s.Selectivity(), 1.0);
  EXPECT_DOUBLE_EQ(s.AvgCost(), 500.0);
  EXPECT_GT(s.input_rate, 0.0);
}

TEST(SCWFTest, ResponseTimeReflectsSchedulerQueueing) {
  Rig rig;
  rig.cm.SetActorCost("map", {2000000, 0, 0});  // 2 virtual seconds
  rig.feed->Push(Token(1), Timestamp(0));
  rig.feed->Push(Token(2), Timestamp(0));
  rig.feed->Close();
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  auto got = rig.sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 2u);
  const Duration r2 = got[1].completed_at - got[1].event_timestamp;
  EXPECT_GE(r2, Seconds(4));  // waited behind the first tuple
}

TEST(SCWFTest, HaltedActorDoesNotSpinScheduler) {
  class HaltAfterOne : public MapActor {
   public:
    HaltAfterOne()
        : MapActor("halt", [](const Token& t) { return t; }) {}
    Result<bool> Postfire() override { return false; }
  };
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* halt = wf.AdoptActor(std::make_unique<HaltAfterOne>());
  auto* h = static_cast<HaltAfterOne*>(halt);
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(src->out(), h->in()).ok());
  ASSERT_TRUE(wf.Connect(h->out(), sink->in()).ok());
  for (int i = 0; i < 5; ++i) {
    feed->Push(Token(i), Timestamp(0));
  }
  feed->Close();
  VirtualClock clock;
  CostModel cm;
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&wf, &clock, &cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(sink->count(), 1u);  // halted after the first firing
  EXPECT_TRUE(d.IsHalted(h));
}

TEST(SCWFTest, MultiInputActorWaitsForBothPorts) {
  class Join : public Actor {
   public:
    Join() : Actor("join") {
      a_ = AddInputPort("a");
      b_ = AddInputPort("b");
      out_ = AddOutputPort("out");
    }
    Status Fire() override {
      auto wa = a_->Get();
      auto wb = b_->Get();
      if (wa && wb) {
        Send(out_, Token(wa->events[0].token.AsInt() +
                         wb->events[0].token.AsInt()));
      }
      return Status::OK();
    }
    InputPort* a_;
    InputPort* b_;
    OutputPort* out_;
  };
  Workflow wf("w");
  auto feed_a = std::make_shared<PushChannel>();
  auto feed_b = std::make_shared<PushChannel>();
  auto* sa = wf.AddActor<StreamSourceActor>("sa", feed_a);
  auto* sb = wf.AddActor<StreamSourceActor>("sb", feed_b);
  auto* join = wf.AddActor<Join>();
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(sa->out(), join->a_).ok());
  ASSERT_TRUE(wf.Connect(sb->out(), join->b_).ok());
  ASSERT_TRUE(wf.Connect(join->out_, sink->in()).ok());
  feed_a->Push(Token(1), Timestamp::Seconds(1));
  feed_b->Push(Token(10), Timestamp::Seconds(5));
  feed_a->Close();
  feed_b->Close();
  VirtualClock clock;
  CostModel cm;
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&wf, &clock, &cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  auto got = sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].token.AsInt(), 11);
}

TEST(SCWFTest, HorizonLimitsProcessing) {
  Rig rig;
  rig.feed->Push(Token(1), Timestamp::Seconds(1));
  rig.feed->Push(Token(2), Timestamp::Seconds(100));
  rig.feed->Close();
  SCWFDirector d(std::make_unique<QBSScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Seconds(50)).ok());
  EXPECT_EQ(rig.sink->count(), 1u);
  // Continue to the end.
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(rig.sink->count(), 2u);
}

}  // namespace
}  // namespace cwf

namespace cwf {
namespace {

TEST(SCWFTest, RunsOnRealClockWithoutCostModel) {
  Rig rig;
  for (int i = 0; i < 10; ++i) {
    rig.feed->Push(Token(i), Timestamp(0));  // all immediately available
  }
  rig.feed->Close();
  RealClock real;
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &real, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(rig.sink->count(), 10u);
  // Measured (not modeled) costs were recorded.
  EXPECT_EQ(d.stats().Get(rig.map).invocations, 10u);
}

TEST(SCWFTest, RealClockHonorsFutureArrivalsWithinHorizon) {
  Rig rig;
  RealClock real;
  rig.feed->Push(Token(1), real.Now() + Millis(30));
  rig.feed->Close();
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &real, nullptr).ok());
  ASSERT_TRUE(d.Run(real.Now() + Millis(500)).ok());
  EXPECT_EQ(rig.sink->count(), 1u);
}

}  // namespace
}  // namespace cwf

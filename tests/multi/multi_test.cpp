#include <gtest/gtest.h>

#include "actors/library.h"
#include "directors/scwf_director.h"
#include "multi/connection_controller.h"
#include "stafilos/fifo_scheduler.h"
#include "stream/stream_source.h"

namespace cwf {
namespace {

struct Built {
  std::unique_ptr<Manager> manager;
  CollectorSink* sink;
  std::shared_ptr<PushChannel> feed;
};

Built BuildManaged(const std::string& name, int events, Timestamp start) {
  auto wf = std::make_unique<Workflow>(name + ".wf");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf->AddActor<StreamSourceActor>("src", feed);
  auto* map = wf->AddActor<MapActor>(
      "map", [](const Token& t) { return Token(t.AsInt() + 1); });
  auto* sink = wf->AddActor<CollectorSink>("sink");
  CWF_CHECK(wf->Connect(src->out(), map->in()).ok());
  CWF_CHECK(wf->Connect(map->out(), sink->in()).ok());
  for (int i = 0; i < events; ++i) {
    feed->Push(Token(i), start);  // all available together at `start`
  }
  feed->Close();
  auto manager = std::make_unique<Manager>(
      name, std::move(wf),
      std::make_unique<SCWFDirector>(std::make_unique<FIFOScheduler>()));
  return {std::move(manager), sink, feed};
}

TEST(ManagerTest, LifecycleTransitions) {
  Built b = BuildManaged("wf1", 3, Timestamp(0));
  VirtualClock clock;
  CostModel cm;
  EXPECT_EQ(b.manager->state(), ManagerState::kCreated);
  ASSERT_TRUE(b.manager->Initialize(&clock, &cm).ok());
  EXPECT_EQ(b.manager->state(), ManagerState::kRunning);
  ASSERT_TRUE(b.manager->Pause().ok());
  EXPECT_EQ(b.manager->state(), ManagerState::kPaused);
  EXPECT_FALSE(b.manager->Pause().ok());  // double pause rejected
  ASSERT_TRUE(b.manager->Resume().ok());
  EXPECT_EQ(b.manager->state(), ManagerState::kRunning);
  ASSERT_TRUE(b.manager->Stop().ok());
  EXPECT_EQ(b.manager->state(), ManagerState::kStopped);
  EXPECT_TRUE(b.manager->Stop().ok());  // idempotent
}

TEST(ManagerTest, RunSliceProcessesBoundedWork) {
  Built b = BuildManaged("wf1", 10, Timestamp(0));
  VirtualClock clock;
  CostModel cm;
  cm.SetDefault({1000, 0, 0});
  ASSERT_TRUE(b.manager->Initialize(&clock, &cm).ok());
  ASSERT_TRUE(b.manager->RunSlice(Seconds(0.005)).ok());
  const size_t after_one_slice = b.sink->count();
  EXPECT_LT(after_one_slice, 10u);
  while (b.manager->HasPendingWork()) {
    ASSERT_TRUE(b.manager->RunSlice(Seconds(100)).ok());
  }
  EXPECT_EQ(b.sink->count(), 10u);
  EXPECT_GT(b.manager->cpu_time_used(), 0);
}

TEST(ManagerTest, PausedManagerDoesNotRun) {
  Built b = BuildManaged("wf1", 5, Timestamp(0));
  VirtualClock clock;
  CostModel cm;
  ASSERT_TRUE(b.manager->Initialize(&clock, &cm).ok());
  ASSERT_TRUE(b.manager->Pause().ok());
  ASSERT_TRUE(b.manager->RunSlice(Seconds(100)).ok());
  EXPECT_EQ(b.sink->count(), 0u);
  EXPECT_FALSE(b.manager->HasPendingWork());
  EXPECT_EQ(b.manager->NextWakeup(), Timestamp::Max());
}

TEST(GlobalSchedulerTest, TwoWorkflowsShareTheCpu) {
  Built a = BuildManaged("alpha", 20, Timestamp(0));
  Built b = BuildManaged("beta", 20, Timestamp(0));
  VirtualClock clock;
  CostModel cm;
  cm.SetDefault({1000, 0, 0});
  ASSERT_TRUE(a.manager->Initialize(&clock, &cm).ok());
  ASSERT_TRUE(b.manager->Initialize(&clock, &cm).ok());
  GlobalScheduler gs;
  gs.AddManager(a.manager.get());
  gs.AddManager(b.manager.get());
  ASSERT_TRUE(gs.Run(&clock, Timestamp::Seconds(120)).ok());
  EXPECT_EQ(a.sink->count(), 20u);
  EXPECT_EQ(b.sink->count(), 20u);
  EXPECT_GT(gs.turns(), 1u);
  // Equal share: CPU allocations are comparable.
  const double ratio =
      static_cast<double>(a.manager->cpu_time_used() + 1) /
      static_cast<double>(b.manager->cpu_time_used() + 1);
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 3.0);
}

TEST(GlobalSchedulerTest, WeightedShareFavorsHeavyWorkflow) {
  Built a = BuildManaged("alpha", 200, Timestamp(0));
  Built b = BuildManaged("beta", 200, Timestamp(0));
  VirtualClock clock;
  CostModel cm;
  cm.SetDefault({2000, 0, 0});
  ASSERT_TRUE(a.manager->Initialize(&clock, &cm).ok());
  ASSERT_TRUE(b.manager->Initialize(&clock, &cm).ok());
  GlobalSchedulerOptions opt;
  opt.policy = CapacityPolicy::kWeightedShare;
  opt.base_quantum = 10000;
  GlobalScheduler gs(opt);
  gs.AddManager(a.manager.get(), 4.0);
  gs.AddManager(b.manager.get(), 1.0);
  // Stop mid-flight: alpha should have been allocated ~4x the quanta.
  ASSERT_TRUE(gs.Run(&clock, Timestamp::Seconds(1)).ok());
  EXPECT_GT(a.sink->count(), b.sink->count());
}

TEST(GlobalSchedulerTest, AdvancesIdleTimeToNextArrival) {
  Built a = BuildManaged("alpha", 1, Timestamp::Seconds(50));
  VirtualClock clock;
  CostModel cm;
  ASSERT_TRUE(a.manager->Initialize(&clock, &cm).ok());
  GlobalScheduler gs;
  gs.AddManager(a.manager.get());
  ASSERT_TRUE(gs.Run(&clock, Timestamp::Seconds(200)).ok());
  EXPECT_EQ(a.sink->count(), 1u);
  EXPECT_GE(clock.Now(), Timestamp::Seconds(50));
}

TEST(ConnectionControllerTest, CommandProtocol) {
  ConnectionController cc;
  Built a = BuildManaged("alpha", 1, Timestamp(0));
  Built b = BuildManaged("beta", 1, Timestamp(0));
  VirtualClock clock;
  CostModel cm;
  ASSERT_TRUE(a.manager->Initialize(&clock, &cm).ok());
  ASSERT_TRUE(b.manager->Initialize(&clock, &cm).ok());
  ASSERT_TRUE(cc.Register(std::move(a.manager)).ok());
  ASSERT_TRUE(cc.Register(std::move(b.manager)).ok());

  auto list = cc.Execute("list");
  ASSERT_TRUE(list.ok());
  EXPECT_NE(list->find("alpha RUNNING"), std::string::npos);
  EXPECT_NE(list->find("beta RUNNING"), std::string::npos);

  ASSERT_TRUE(cc.Execute("pause alpha").ok());
  EXPECT_NE(cc.Execute("status alpha")->find("PAUSED"), std::string::npos);
  ASSERT_TRUE(cc.Execute("resume alpha").ok());
  ASSERT_TRUE(cc.Execute("stop alpha").ok());
  EXPECT_NE(cc.Execute("status alpha")->find("STOPPED"), std::string::npos);

  // Remove requires the workflow to be stopped.
  EXPECT_FALSE(cc.Execute("remove beta").ok());
  ASSERT_TRUE(cc.Execute("stop beta").ok());
  ASSERT_TRUE(cc.Execute("remove beta").ok());
  EXPECT_FALSE(cc.Find("beta").ok());
}

TEST(ConnectionControllerTest, ErrorsOnBadCommands) {
  ConnectionController cc;
  EXPECT_FALSE(cc.Execute("").ok());
  EXPECT_FALSE(cc.Execute("pause").ok());
  EXPECT_FALSE(cc.Execute("bounce wf").ok());
  EXPECT_FALSE(cc.Execute("status nosuch").ok());
}

TEST(ConnectionControllerTest, DuplicateRegistrationRejected) {
  ConnectionController cc;
  Built a = BuildManaged("alpha", 1, Timestamp(0));
  Built dup = BuildManaged("alpha", 1, Timestamp(0));
  ASSERT_TRUE(cc.Register(std::move(a.manager)).ok());
  EXPECT_EQ(cc.Register(std::move(dup.manager)).code(),
            StatusCode::kAlreadyExists);
}

TEST(ManagerStateNameTest, Names) {
  EXPECT_STREQ(ManagerStateName(ManagerState::kCreated), "CREATED");
  EXPECT_STREQ(ManagerStateName(ManagerState::kRunning), "RUNNING");
  EXPECT_STREQ(ManagerStateName(ManagerState::kPaused), "PAUSED");
  EXPECT_STREQ(ManagerStateName(ManagerState::kStopped), "STOPPED");
}

}  // namespace
}  // namespace cwf

namespace cwf {
namespace {

TEST(ManagerTest, DoubleInitializeRejected) {
  Built b = BuildManaged("wf1", 1, Timestamp(0));
  VirtualClock clock;
  CostModel cm;
  ASSERT_TRUE(b.manager->Initialize(&clock, &cm).ok());
  EXPECT_EQ(b.manager->Initialize(&clock, &cm).code(),
            StatusCode::kFailedPrecondition);
}

TEST(GlobalSchedulerTest, NoManagersTerminatesImmediately) {
  GlobalScheduler gs;
  VirtualClock clock;
  EXPECT_TRUE(gs.Run(&clock, Timestamp::Seconds(10)).ok());
  EXPECT_EQ(gs.turns(), 0u);
}

TEST(GlobalSchedulerTest, StoppedManagerIsSkipped) {
  Built a = BuildManaged("alpha", 5, Timestamp(0));
  VirtualClock clock;
  CostModel cm;
  ASSERT_TRUE(a.manager->Initialize(&clock, &cm).ok());
  ASSERT_TRUE(a.manager->Stop().ok());
  GlobalScheduler gs;
  gs.AddManager(a.manager.get());
  ASSERT_TRUE(gs.Run(&clock, Timestamp::Seconds(10)).ok());
  EXPECT_EQ(a.sink->count(), 0u);
}

}  // namespace
}  // namespace cwf

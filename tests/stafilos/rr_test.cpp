#include <gtest/gtest.h>

#include "sched_test_util.h"
#include "stafilos/rr_scheduler.h"

namespace cwf {
namespace {

using schedtest::PipelineRig;

TEST(RRTest, ProcessesPipelineCompletely) {
  PipelineRig rig;
  rig.PushN(40);
  rig.feed->Close();
  SCWFDirector d(std::make_unique<RRScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(rig.sink->count(), 40u);
}

TEST(RRTest, SliceExhaustionForcesRotation) {
  // stage_a is expensive; a small slice forces it to yield to stage_b every
  // period instead of draining its whole queue first.
  PipelineRig rig;
  rig.cm.SetDefault({1000, 0, 0});
  RROptions opt;
  opt.slice = 2500;  // 2 firings per period
  auto sched = std::make_unique<RRScheduler>(opt);
  RRScheduler* sp = sched.get();
  rig.PushN(20);
  rig.feed->Close();
  SCWFDirector d(std::move(sched));
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(rig.sink->count(), 20u);
  EXPECT_GT(sp->iteration_count(), 3u);
}

TEST(RRTest, LargerSliceMeansFewerPeriods) {
  auto periods = [](Duration slice) {
    PipelineRig rig;
    rig.cm.SetDefault({1000, 0, 0});
    RROptions opt;
    opt.slice = slice;
    auto sched = std::make_unique<RRScheduler>(opt);
    RRScheduler* sp = sched.get();
    rig.PushN(30);
    rig.feed->Close();
    SCWFDirector d(std::move(sched));
    CWF_CHECK(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
    CWF_CHECK(d.Run(Timestamp::Max()).ok());
    CWF_CHECK_MSG(rig.sink->count() == 30u, "lost events");
    return sp->iteration_count();
  };
  EXPECT_GT(periods(2000), periods(50000));
}

TEST(RRTest, InactiveActorGivesUpRemainingSlice) {
  // Covered behaviorally: an actor whose queue empties goes INACTIVE and a
  // fresh slice is granted when new events arrive; the stream still drains
  // in arrival order per channel.
  PipelineRig rig;
  for (int i = 0; i < 5; ++i) {
    rig.feed->Push(Token(i), Timestamp::Seconds(i * 10));
  }
  rig.feed->Close();
  SCWFDirector d(std::make_unique<RRScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  auto got = rig.sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 5u);
  for (int i = 1; i < 5; ++i) {
    EXPECT_LE(got[i - 1].event_timestamp, got[i].event_timestamp);
  }
}

TEST(RRTest, Name) {
  RRScheduler s;
  EXPECT_STREQ(s.name(), "RR");
}

}  // namespace
}  // namespace cwf

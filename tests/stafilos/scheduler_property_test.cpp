// Cross-scheduler properties: whatever the policy, no event is lost, the
// same results are produced, and runs are deterministic.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sched_test_util.h"
#include "stafilos/edf_scheduler.h"
#include "stafilos/fifo_scheduler.h"
#include "stafilos/qbs_scheduler.h"
#include "stafilos/rb_scheduler.h"
#include "stafilos/rr_scheduler.h"

namespace cwf {
namespace {

enum class Kind { kQBS, kRR, kRB, kFIFO, kEDF };

std::unique_ptr<AbstractScheduler> Make(Kind kind) {
  switch (kind) {
    case Kind::kQBS:
      return std::make_unique<QBSScheduler>();
    case Kind::kRR:
      return std::make_unique<RRScheduler>();
    case Kind::kRB:
      return std::make_unique<RBScheduler>();
    case Kind::kFIFO:
      return std::make_unique<FIFOScheduler>();
    case Kind::kEDF:
      return std::make_unique<EDFScheduler>();
  }
  return nullptr;
}

const char* Name(Kind k) {
  switch (k) {
    case Kind::kQBS:
      return "QBS";
    case Kind::kRR:
      return "RR";
    case Kind::kRB:
      return "RB";
    case Kind::kFIFO:
      return "FIFO";
    case Kind::kEDF:
      return "EDF";
  }
  return "?";
}

class SchedulerProperty : public ::testing::TestWithParam<Kind> {};

TEST_P(SchedulerProperty, NoEventLossUnderBurstyLoad) {
  schedtest::PipelineRig rig;
  Rng rng(7);
  int pushed = 0;
  for (int burst = 0; burst < 10; ++burst) {
    const Timestamp at = Timestamp::Seconds(burst * 5);
    const int n = static_cast<int>(rng.NextInRange(1, 40));
    for (int i = 0; i < n; ++i) {
      rig.feed->Push(Token(pushed++), at);
    }
  }
  rig.feed->Close();
  SCWFDirector d(Make(GetParam()));
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(rig.sink->count(), static_cast<size_t>(pushed)) << Name(GetParam());
  // Scheduler fully drained.
  EXPECT_EQ(d.scheduler()->TotalQueuedEvents(), 0u);
}

TEST_P(SchedulerProperty, SameMultisetOfResultsAsFIFO) {
  auto run = [](std::unique_ptr<AbstractScheduler> sched) {
    schedtest::PipelineRig rig;
    for (int i = 0; i < 60; ++i) {
      rig.feed->Push(Token(i), Timestamp::Seconds(i / 10));
    }
    rig.feed->Close();
    SCWFDirector d(std::move(sched));
    CWF_CHECK(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
    CWF_CHECK(d.Run(Timestamp::Max()).ok());
    std::vector<int64_t> values;
    for (const auto& r : rig.sink->TakeSnapshot()) {
      values.push_back(r.token.AsInt());
    }
    std::sort(values.begin(), values.end());
    return values;
  };
  EXPECT_EQ(run(Make(GetParam())), run(Make(Kind::kFIFO)));
}

TEST_P(SchedulerProperty, RunsAreDeterministic) {
  auto run = [&] {
    schedtest::PipelineRig rig;
    for (int i = 0; i < 40; ++i) {
      rig.feed->Push(Token(i), Timestamp::Seconds(i / 4));
    }
    rig.feed->Close();
    SCWFDirector d(Make(GetParam()));
    CWF_CHECK(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
    CWF_CHECK(d.Run(Timestamp::Max()).ok());
    std::vector<std::pair<int64_t, int64_t>> seq;
    for (const auto& r : rig.sink->TakeSnapshot()) {
      seq.emplace_back(r.token.AsInt(), r.completed_at.micros());
    }
    return seq;
  };
  EXPECT_EQ(run(), run());
}

TEST_P(SchedulerProperty, SurvivesZeroEventRun) {
  schedtest::PipelineRig rig;
  rig.feed->Close();
  SCWFDirector d(Make(GetParam()));
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(rig.sink->count(), 0u);
}

TEST_P(SchedulerProperty, IdempotentAcrossSequentialHorizons) {
  schedtest::PipelineRig rig;
  for (int i = 0; i < 30; ++i) {
    rig.feed->Push(Token(i), Timestamp::Seconds(i));
  }
  rig.feed->Close();
  SCWFDirector d(Make(GetParam()));
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  for (int t = 5; t <= 35; t += 5) {
    ASSERT_TRUE(d.Run(Timestamp::Seconds(t)).ok());
  }
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(rig.sink->count(), 30u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SchedulerProperty,
                         ::testing::Values(Kind::kQBS, Kind::kRR, Kind::kRB,
                                           Kind::kFIFO, Kind::kEDF),
                         [](const auto& info) { return Name(info.param); });

}  // namespace
}  // namespace cwf

// ---------------------------------------------------------------------------
// Load shedding (extension)
// ---------------------------------------------------------------------------

namespace cwf {
namespace {

TEST(LoadSheddingTest, DisabledByDefaultLosesNothing) {
  schedtest::PipelineRig rig;
  rig.PushN(100);
  rig.feed->Close();
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(rig.sink->count(), 100u);
  auto* fifo = static_cast<FIFOScheduler*>(d.scheduler());
  EXPECT_EQ(fifo->shed_windows(), 0u);
}

TEST(LoadSheddingTest, CapBoundsQueueAndCountsDrops) {
  schedtest::PipelineRig rig;
  // Slow middle stage, all tuples arrive at once: queues build up.
  rig.cm.SetActorCost("stage_a", {50000, 0, 0});
  rig.PushN(200);
  rig.feed->Close();
  auto sched = std::make_unique<FIFOScheduler>();
  sched->SetLoadShedding({10});
  FIFOScheduler* sp = sched.get();
  SCWFDirector d(std::move(sched));
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_GT(sp->shed_windows(), 0u);
  EXPECT_EQ(sp->shed_events(), sp->shed_windows());  // 1-event windows
  // Everything admitted was processed; admitted + shed = offered.
  EXPECT_EQ(rig.sink->count() + sp->shed_windows(), 200u);
  EXPECT_LT(rig.sink->count(), 200u);
}

TEST(LoadSheddingTest, SheddingImprovesResponseUnderOverload) {
  auto run = [](size_t cap) {
    schedtest::PipelineRig rig;
    rig.cm.SetActorCost("stage_a", {50000, 0, 0});
    rig.PushN(200);
    rig.feed->Close();
    auto sched = std::make_unique<FIFOScheduler>();
    sched->SetLoadShedding({cap});
    SCWFDirector d(std::move(sched));
    CWF_CHECK(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
    CWF_CHECK(d.Run(Timestamp::Max()).ok());
    Duration worst = 0;
    for (const auto& r : rig.sink->TakeSnapshot()) {
      worst = std::max(worst, r.completed_at - r.event_timestamp);
    }
    return worst;
  };
  EXPECT_LT(run(5), run(0));
}

}  // namespace
}  // namespace cwf

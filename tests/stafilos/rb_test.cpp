#include <gtest/gtest.h>

#include "sched_test_util.h"
#include "stafilos/rb_scheduler.h"

namespace cwf {
namespace {

using schedtest::PipelineRig;

TEST(RBTest, ProcessesPipelineCompletely) {
  PipelineRig rig;
  rig.PushN(40);
  rig.feed->Close();
  SCWFDirector d(std::make_unique<RBScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(rig.sink->count(), 40u);
}

TEST(RBTest, PeriodBufferingDelaysNewEvents) {
  // Events enqueued during a period enter the queues at the period's end:
  // the scheduler must take at least two director iterations to move a
  // tuple through a two-stage pipeline.
  PipelineRig rig;
  rig.feed->Push(Token(1), Timestamp(0));
  rig.feed->Close();
  auto sched = std::make_unique<RBScheduler>();
  RBScheduler* sp = sched.get();
  SCWFDirector d(std::move(sched));
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(rig.sink->count(), 1u);
  EXPECT_GE(sp->iteration_count(), 3u);  // one period per pipeline stage
}

TEST(RBTest, DynamicPrioritiesFavorProductivePaths) {
  // Two branches: "cheap" (low cost, selectivity 1) and "expensive"
  // (high cost). Highest-Rate must rank the cheap branch higher.
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* cheap = wf.AddActor<MapActor>("cheap",
                                      [](const Token& t) { return t; });
  auto* pricey = wf.AddActor<MapActor>("pricey",
                                       [](const Token& t) { return t; });
  auto* s1 = wf.AddActor<CollectorSink>("s1");
  auto* s2 = wf.AddActor<CollectorSink>("s2");
  ASSERT_TRUE(wf.Connect(src->out(), cheap->in()).ok());
  ASSERT_TRUE(wf.Connect(src->out(), pricey->in()).ok());
  ASSERT_TRUE(wf.Connect(cheap->out(), s1->in()).ok());
  ASSERT_TRUE(wf.Connect(pricey->out(), s2->in()).ok());
  VirtualClock clock;
  CostModel cm;
  cm.SetActorCost("cheap", {100, 0, 0});
  cm.SetActorCost("pricey", {10000, 0, 0});
  auto sched = std::make_unique<RBScheduler>();
  RBScheduler* sp = sched.get();
  for (int i = 0; i < 30; ++i) {
    feed->Push(Token(i), Timestamp(0));
  }
  feed->Close();
  SCWFDirector d(std::move(sched));
  ASSERT_TRUE(d.Initialize(&wf, &clock, &cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(s1->count(), 30u);
  EXPECT_EQ(s2->count(), 30u);
  EXPECT_GT(sp->PriorityOf(cheap), sp->PriorityOf(pricey));
}

TEST(RBTest, SourcesNotSpeciallyScheduledByDefault) {
  RBScheduler s;
  EXPECT_STREQ(s.name(), "RB");
  // Ablation knob: enabling the interval must not break processing.
  PipelineRig rig;
  rig.PushN(20);
  rig.feed->Close();
  RBOptions opt;
  opt.source_interval = 5;
  SCWFDirector d(std::make_unique<RBScheduler>(opt));
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(rig.sink->count(), 20u);
}

}  // namespace
}  // namespace cwf

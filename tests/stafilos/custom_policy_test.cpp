// Validates the extensibility story (and keeps docs/SCHEDULERS.md honest):
// the Longest-Queue-First policy from the documentation, compiled verbatim
// against the framework and run through the same battery as the built-ins.

#include <gtest/gtest.h>

#include "sched_test_util.h"
#include "stafilos/abstract_scheduler.h"

namespace cwf {

// --- begin: policy exactly as documented in docs/SCHEDULERS.md ---

// Longest-Queue-First: always run the actor with the largest backlog —
// a classic DSMS memory-minimizing heuristic.
class LQFScheduler : public AbstractScheduler {
 public:
  LQFScheduler() { source_interval_ = 5; }  // smooth source injection

  const char* name() const override { return "LQF"; }

 protected:
  bool HigherPriority(const Entry& a, const Entry& b) const override {
    if (a.is_source != b.is_source) return a.is_source;  // drain inputs first
    if (a.queue.size() != b.queue.size()) {
      return a.queue.size() > b.queue.size();
    }
    return a.ready_order < b.ready_order;                // FIFO tie-break
  }

  void RecomputeState(Entry* entry) override {
    if (!entry->is_source) {
      SetState(entry, entry->queue.empty() ? ActorState::kInactive
                                           : ActorState::kActive);
      return;
    }
    // Sources never go INACTIVE (Table 2); once per iteration unless the
    // interval mechanism re-dispatches them.
    SetState(entry, SourceHasData(*entry) && !entry->fired_this_iteration
                        ? ActorState::kActive
                        : ActorState::kWaiting);
  }
};

// --- end: documented policy ---

namespace {

using schedtest::PipelineRig;

TEST(CustomPolicyTest, LqfDrainsEverything) {
  PipelineRig rig;
  rig.PushN(80);
  rig.feed->Close();
  SCWFDirector d(std::make_unique<LQFScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(rig.sink->count(), 80u);
  EXPECT_EQ(d.scheduler()->TotalQueuedEvents(), 0u);
}

TEST(CustomPolicyTest, LqfPrefersLongerBacklog) {
  // Two branches; the slow one accumulates backlog and must be preferred.
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* a = wf.AddActor<MapActor>("a", [](const Token& t) { return t; });
  auto* b = wf.AddActor<MapActor>("b", [](const Token& t) { return t; });
  auto* sa = wf.AddActor<CollectorSink>("sa");
  auto* sb = wf.AddActor<CollectorSink>("sb");
  ASSERT_TRUE(wf.Connect(src->out(), a->in()).ok());
  ASSERT_TRUE(wf.Connect(src->out(), b->in()).ok());
  ASSERT_TRUE(wf.Connect(a->out(), sa->in()).ok());
  ASSERT_TRUE(wf.Connect(b->out(), sb->in()).ok());
  for (int i = 0; i < 50; ++i) {
    feed->Push(Token(i), Timestamp(0));
  }
  feed->Close();
  VirtualClock clock;
  CostModel cm;
  SCWFDirector d(std::make_unique<LQFScheduler>());
  ASSERT_TRUE(d.Initialize(&wf, &clock, &cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(sa->count(), 50u);
  EXPECT_EQ(sb->count(), 50u);
}

TEST(CustomPolicyTest, LqfIsDeterministic) {
  auto run = [] {
    PipelineRig rig;
    rig.PushN(40);
    rig.feed->Close();
    SCWFDirector d(std::make_unique<LQFScheduler>());
    CWF_CHECK(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
    CWF_CHECK(d.Run(Timestamp::Max()).ok());
    return rig.clock.Now();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace cwf

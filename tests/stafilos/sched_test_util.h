// Shared rig for scheduler tests: src -> stage -> sink under SCWF.

#ifndef CONFLUENCE_TESTS_STAFILOS_SCHED_TEST_UTIL_H_
#define CONFLUENCE_TESTS_STAFILOS_SCHED_TEST_UTIL_H_

#include <memory>

#include "actors/library.h"
#include "directors/scwf_director.h"
#include "stream/stream_source.h"

namespace cwf::schedtest {

struct PipelineRig {
  Workflow wf{"rig"};
  std::shared_ptr<PushChannel> feed = std::make_shared<PushChannel>();
  StreamSourceActor* src;
  MapActor* stage_a;
  MapActor* stage_b;
  CollectorSink* sink;
  VirtualClock clock;
  CostModel cm;

  PipelineRig() {
    src = wf.AddActor<StreamSourceActor>("src", feed);
    stage_a = wf.AddActor<MapActor>(
        "stage_a", [](const Token& t) { return Token(t.AsInt() + 1); });
    stage_b = wf.AddActor<MapActor>(
        "stage_b", [](const Token& t) { return Token(t.AsInt() * 2); });
    sink = wf.AddActor<CollectorSink>("sink");
    CWF_CHECK(wf.Connect(src->out(), stage_a->in()).ok());
    CWF_CHECK(wf.Connect(stage_a->out(), stage_b->in()).ok());
    CWF_CHECK(wf.Connect(stage_b->out(), sink->in()).ok());
  }

  void PushN(int n, Timestamp at = Timestamp(0)) {
    for (int i = 0; i < n; ++i) {
      feed->Push(Token(i), at);
    }
  }
};

}  // namespace cwf::schedtest

#endif  // CONFLUENCE_TESTS_STAFILOS_SCHED_TEST_UTIL_H_

// Verifies the paper's Table 2: actor state conditions per scheduler.

#include <gtest/gtest.h>

#include "sched_test_util.h"
#include "stafilos/qbs_scheduler.h"
#include "stafilos/rb_scheduler.h"
#include "stafilos/rr_scheduler.h"

namespace cwf {
namespace {

using schedtest::PipelineRig;

// Drive a 3-stage pipeline one director iteration at a time and observe the
// scheduler-visible states at the boundaries the paper's Table 2 defines.

TEST(StateConditionsTest, QBS_InactiveWhenNoEvents) {
  PipelineRig rig;
  rig.feed->Close();
  SCWFDirector d(std::make_unique<QBSScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  // No events ever: internal actors INACTIVE.
  EXPECT_EQ(d.scheduler()->GetState(rig.stage_a), ActorState::kInactive);
  EXPECT_EQ(d.scheduler()->GetState(rig.stage_b), ActorState::kInactive);
  EXPECT_EQ(d.scheduler()->GetState(rig.sink), ActorState::kInactive);
}

TEST(StateConditionsTest, QBS_SourceNeverInactive) {
  PipelineRig rig;
  rig.feed->Close();
  SCWFDirector d(std::make_unique<QBSScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  // Table 2: "A source actor does not transition into this [INACTIVE]
  // state" — an exhausted source is WAITING, not INACTIVE.
  EXPECT_EQ(d.scheduler()->GetState(rig.src), ActorState::kWaiting);
}

TEST(StateConditionsTest, QBS_ActiveRequiresEventsAndPositiveQuantum) {
  PipelineRig rig;
  auto sched = std::make_unique<QBSScheduler>();
  AbstractScheduler* sp = sched.get();
  SCWFDirector d(std::move(sched));
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  // Inject events at t=10 but stop the run before the clock reaches them:
  // queues fill, states recompute at Enqueue.
  rig.feed->Push(Token(1), Timestamp::Seconds(10));
  rig.feed->Close();
  ASSERT_TRUE(d.Run(Timestamp::Seconds(5)).ok());
  // Nothing reached the internal actors yet.
  EXPECT_EQ(sp->GetState(rig.stage_a), ActorState::kInactive);
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(rig.sink->count(), 1u);
}

TEST(StateConditionsTest, QBS_WaitingOnExhaustedQuantum) {
  // Make stage_a so expensive a single firing overdraws any quantum.
  PipelineRig rig;
  rig.cm.SetActorCost("stage_a", {10000000, 0, 0});
  QBSOptions opt;
  opt.basic_quantum = 10;
  opt.max_banked_epochs = 1;
  auto sched = std::make_unique<QBSScheduler>(opt);
  AbstractScheduler* sp = sched.get();
  SCWFDirector d(std::move(sched));
  rig.PushN(10);
  rig.feed->Close();
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  // Despite perpetual overdraw, re-quantification kept reviving it and the
  // stream drained; at the end it is INACTIVE (no events).
  EXPECT_EQ(sp->GetState(rig.stage_a), ActorState::kInactive);
  EXPECT_EQ(rig.sink->count(), 10u);
}

TEST(StateConditionsTest, RR_EmptyQueueIsInactive_RRKeepsNoSlice) {
  PipelineRig rig;
  SCWFDirector d(std::make_unique<RRScheduler>());
  rig.PushN(5);
  rig.feed->Close();
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(d.scheduler()->GetState(rig.stage_a), ActorState::kInactive);
  EXPECT_EQ(d.scheduler()->GetState(rig.src), ActorState::kWaiting);
}

TEST(StateConditionsTest, RB_WaitingMeansEventsInNextPeriodBuffer) {
  // Table 2 RB: WAITING = "no events waiting in its queue AND has events
  // waiting in the next period buffer".
  PipelineRig rig;
  auto sched = std::make_unique<RBScheduler>();
  RBScheduler* sp = sched.get();
  SCWFDirector d(std::move(sched));
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  // Manually enqueue into the period buffer via the scheduler interface.
  ReadyWindow rw;
  rw.receiver = static_cast<TMWindowedReceiver*>(
      rig.stage_a->in()->receiver(0));
  rw.window.events.push_back(
      CWEvent(Token(1), Timestamp(0), WaveTag::Root(1)));
  sp->Enqueue(rig.stage_a, std::move(rw));
  EXPECT_EQ(sp->BufferedWindows(rig.stage_a), 1u);
  EXPECT_EQ(sp->QueuedWindows(rig.stage_a), 0u);
  EXPECT_EQ(sp->GetState(rig.stage_a), ActorState::kWaiting);
  // Period end releases the buffer: ACTIVE with a queued window.
  sp->OnIterationEnd();
  EXPECT_EQ(sp->QueuedWindows(rig.stage_a), 1u);
  EXPECT_EQ(sp->GetState(rig.stage_a), ActorState::kActive);
}

TEST(StateConditionsTest, RB_SourceActivePerPeriodUntilFired) {
  PipelineRig rig;
  rig.feed->Push(Token(1), Timestamp(0));
  auto sched = std::make_unique<RBScheduler>();
  RBScheduler* sp = sched.get();
  SCWFDirector d(std::move(sched));
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  // Source has data and has not fired: ACTIVE.
  EXPECT_EQ(sp->GetNextActor(), rig.src);
  EXPECT_EQ(sp->GetState(rig.src), ActorState::kActive);
  // After firing once in this period: WAITING.
  sp->OnActorFired(rig.src, 100, true);
  EXPECT_EQ(sp->GetState(rig.src), ActorState::kWaiting);
  // New period: eligible again.
  sp->OnIterationEnd();
  EXPECT_EQ(sp->GetState(rig.src), ActorState::kActive);
}

TEST(StateConditionsTest, StateNamesRender) {
  EXPECT_STREQ(ActorStateName(ActorState::kActive), "ACTIVE");
  EXPECT_STREQ(ActorStateName(ActorState::kWaiting), "WAITING");
  EXPECT_STREQ(ActorStateName(ActorState::kInactive), "INACTIVE");
}

}  // namespace
}  // namespace cwf

#include <gtest/gtest.h>

#include "actors/library.h"
#include "stafilos/statistics.h"

namespace cwf {
namespace {

Token Identity(const Token& t) { return t; }

struct Graph {
  Workflow wf{"g"};
  MapActor* a;
  MapActor* b;
  MapActor* c;

  Graph() {
    a = wf.AddActor<MapActor>("a", Identity);
    b = wf.AddActor<MapActor>("b", Identity);
    c = wf.AddActor<MapActor>("c", Identity);
    CWF_CHECK(wf.Connect(a->out(), b->in()).ok());
    CWF_CHECK(wf.Connect(b->out(), c->in()).ok());
  }
};

TEST(StatisticsTest, FiringAccumulation) {
  Graph g;
  ActorStatistics stats;
  stats.Initialize(g.wf);
  stats.OnFiring(g.a, 100, 1, 2, Timestamp::Seconds(1));
  stats.OnFiring(g.a, 300, 1, 0, Timestamp::Seconds(2));
  const ActorStats& s = stats.Get(g.a);
  EXPECT_EQ(s.invocations, 2u);
  EXPECT_EQ(s.total_cost, 400);
  EXPECT_DOUBLE_EQ(s.AvgCost(), 200.0);
  EXPECT_EQ(s.events_consumed, 2u);
  EXPECT_EQ(s.events_produced, 2u);
  EXPECT_DOUBLE_EQ(s.Selectivity(), 1.0);
}

TEST(StatisticsTest, SelectivityReflectsFiltering) {
  Graph g;
  ActorStatistics stats;
  stats.Initialize(g.wf);
  stats.OnFiring(g.a, 10, 10, 3, Timestamp::Seconds(1));
  EXPECT_DOUBLE_EQ(stats.Get(g.a).Selectivity(), 0.3);
  // Unknown actor: defaults.
  MapActor other("other", [](const Token& t) { return t; });
  EXPECT_DOUBLE_EQ(stats.Get(&other).Selectivity(), 1.0);
}

TEST(StatisticsTest, InputRateEwma) {
  Graph g;
  ActorStatistics stats;
  stats.Initialize(g.wf);
  // 10 events per second for 5 seconds.
  for (int t = 1; t <= 5; ++t) {
    stats.OnEventsArrived(g.a, 10, Timestamp::Seconds(t));
  }
  EXPECT_NEAR(stats.Get(g.a).input_rate, 10.0, 1.0);
  EXPECT_EQ(stats.Get(g.a).events_arrived, 50u);
}

TEST(StatisticsTest, EwmaCostTracksRecentInvocations) {
  Graph g;
  ActorStatistics stats(0.5);
  stats.Initialize(g.wf);
  stats.OnFiring(g.a, 100, 1, 1, Timestamp::Seconds(1));
  EXPECT_DOUBLE_EQ(stats.Get(g.a).ewma_cost, 100.0);
  stats.OnFiring(g.a, 300, 1, 1, Timestamp::Seconds(2));
  EXPECT_DOUBLE_EQ(stats.Get(g.a).ewma_cost, 200.0);  // 0.5*300 + 0.5*100
}

TEST(StatisticsTest, GlobalMetricsChain) {
  // Chain a -> b -> c with selectivities 0.5, 1.0, 0.2 and unit costs.
  Graph g;
  ActorStatistics stats;
  stats.Initialize(g.wf);
  stats.OnFiring(g.a, 10, 10, 5, Timestamp::Seconds(1));   // s=0.5 c=1
  stats.OnFiring(g.b, 20, 10, 10, Timestamp::Seconds(2));  // s=1.0 c=2
  stats.OnFiring(g.c, 10, 10, 2, Timestamp::Seconds(3));   // s=0.2 c=1
  stats.RecomputeGlobal();
  // c is the output operator: S(c)=1 (delivery is the useful work), C(c)=1;
  // S(b)=1*1=1, C(b)=2+1*1=3; S(a)=0.5*1=0.5, C(a)=1+0.5*3=2.5.
  EXPECT_NEAR(stats.GlobalSelectivity(g.c), 1.0, 1e-9);
  EXPECT_NEAR(stats.GlobalCost(g.c), 1.0, 1e-9);
  EXPECT_NEAR(stats.GlobalSelectivity(g.b), 1.0, 1e-9);
  EXPECT_NEAR(stats.GlobalCost(g.b), 3.0, 1e-9);
  EXPECT_NEAR(stats.GlobalSelectivity(g.a), 0.5, 1e-9);
  EXPECT_NEAR(stats.GlobalCost(g.a), 2.5, 1e-9);
  // Pr(A) = S/C.
  EXPECT_NEAR(stats.RatePriority(g.a), 0.5 / 2.5, 1e-9);
}

TEST(StatisticsTest, GlobalMetricsSumOverSharedPaths) {
  // a fans out to b and c ("we add up the downstream global costs and
  // global selectivities of each path").
  Workflow wf("fan");
  auto* a = wf.AddActor<MapActor>("a", Identity);
  auto* b = wf.AddActor<MapActor>("b", Identity);
  auto* c = wf.AddActor<MapActor>("c", Identity);
  ASSERT_TRUE(wf.Connect(a->out(), b->in()).ok());
  ASSERT_TRUE(wf.Connect(a->out(), c->in()).ok());
  ActorStatistics stats;
  stats.Initialize(wf);
  stats.OnFiring(a, 10, 10, 10, Timestamp::Seconds(1));  // s=1 c=1
  stats.OnFiring(b, 20, 10, 5, Timestamp::Seconds(2));   // s=.5 c=2
  stats.OnFiring(c, 30, 10, 10, Timestamp::Seconds(3));  // s=1 c=3
  stats.RecomputeGlobal();
  // Leaves b and c are output operators (S=1 each); paths add up.
  EXPECT_NEAR(stats.GlobalSelectivity(a), 1.0 * (1.0 + 1.0), 1e-9);
  EXPECT_NEAR(stats.GlobalCost(a), 1.0 + 1.0 * (2.0 + 3.0), 1e-9);
}

TEST(StatisticsTest, GlobalMetricsCutCyclesConservatively) {
  Workflow wf("cyc");
  auto* a = wf.AddActor<MapActor>("a", Identity);
  auto* b = wf.AddActor<MapActor>("b", Identity);
  ASSERT_TRUE(wf.Connect(a->out(), b->in()).ok());
  ASSERT_TRUE(wf.Connect(b->out(), a->in()).ok());
  ActorStatistics stats;
  stats.Initialize(wf);
  stats.OnFiring(a, 10, 10, 10, Timestamp::Seconds(1));
  stats.OnFiring(b, 10, 10, 10, Timestamp::Seconds(2));
  stats.RecomputeGlobal();  // must terminate
  EXPECT_GT(stats.GlobalCost(a), 0.0);
  EXPECT_GT(stats.RatePriority(a), 0.0);
}

TEST(StatisticsTest, SourceDefaultsAreSafe) {
  Graph g;
  ActorStatistics stats;
  stats.Initialize(g.wf);
  // An actor that never consumed anything: selectivity 1, per-event cost
  // falls back to per-invocation cost.
  stats.OnFiring(g.a, 500, 0, 3, Timestamp::Seconds(1));
  EXPECT_DOUBLE_EQ(stats.Get(g.a).Selectivity(), 1.0);
  EXPECT_DOUBLE_EQ(stats.Get(g.a).AvgCostPerEvent(), 500.0);
  stats.RecomputeGlobal();
  EXPECT_GT(stats.RatePriority(g.a), 0.0);
}

TEST(StatisticsTest, InitializeResets) {
  Graph g;
  ActorStatistics stats;
  stats.Initialize(g.wf);
  stats.OnFiring(g.a, 100, 1, 1, Timestamp::Seconds(1));
  stats.Initialize(g.wf);
  EXPECT_EQ(stats.Get(g.a).invocations, 0u);
}

}  // namespace
}  // namespace cwf

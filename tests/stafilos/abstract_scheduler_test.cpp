// Direct tests of the Abstract Scheduler machinery shared by every policy:
// the per-actor event queues sorted by timestamp, registration, priorities
// and introspection.

#include <gtest/gtest.h>

#include "sched_test_util.h"
#include "stafilos/fifo_scheduler.h"
#include "stafilos/qbs_scheduler.h"

namespace cwf {
namespace {

using schedtest::PipelineRig;

ReadyWindow MakeRW(PipelineRig* rig, int64_t ts_us, uint64_t seq) {
  ReadyWindow rw;
  rw.receiver =
      static_cast<TMWindowedReceiver*>(rig->stage_a->in()->receiver(0));
  CWEvent e(Token(static_cast<int64_t>(seq)), Timestamp(ts_us),
            WaveTag::Root(seq));
  e.seq = seq;
  rw.window.events.push_back(e);
  return rw;
}

struct Bound {
  PipelineRig rig;
  SCWFDirector director;
  AbstractScheduler* sched;

  Bound() : director(std::make_unique<FIFOScheduler>()) {
    CWF_CHECK(director.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
    sched = director.scheduler();
  }
};

TEST(AbstractSchedulerTest, PerActorQueueIsSortedByTimestamp) {
  Bound b;
  // Enqueue out of order: the paper's abstract scheduler keeps per-actor
  // queues of events *sorted by timestamp*.
  b.sched->Enqueue(b.rig.stage_a, MakeRW(&b.rig, 3000, 1));
  b.sched->Enqueue(b.rig.stage_a, MakeRW(&b.rig, 1000, 2));
  b.sched->Enqueue(b.rig.stage_a, MakeRW(&b.rig, 2000, 3));
  EXPECT_EQ(b.sched->QueuedWindows(b.rig.stage_a), 3u);
  EXPECT_EQ(b.sched->TotalQueuedEvents(), 3u);
  auto w1 = b.sched->PopWindow(b.rig.stage_a);
  auto w2 = b.sched->PopWindow(b.rig.stage_a);
  auto w3 = b.sched->PopWindow(b.rig.stage_a);
  ASSERT_TRUE(w1 && w2 && w3);
  EXPECT_EQ(w1->window.events[0].timestamp, Timestamp(1000));
  EXPECT_EQ(w2->window.events[0].timestamp, Timestamp(2000));
  EXPECT_EQ(w3->window.events[0].timestamp, Timestamp(3000));
  EXPECT_FALSE(b.sched->PopWindow(b.rig.stage_a).has_value());
  EXPECT_EQ(b.sched->TotalQueuedEvents(), 0u);
}

TEST(AbstractSchedulerTest, TimestampTieBrokenBySequence) {
  Bound b;
  b.sched->Enqueue(b.rig.stage_a, MakeRW(&b.rig, 1000, 9));
  b.sched->Enqueue(b.rig.stage_a, MakeRW(&b.rig, 1000, 4));
  auto first = b.sched->PopWindow(b.rig.stage_a);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->window.events[0].seq, 4u);
}

TEST(AbstractSchedulerTest, UnknownActorIntrospectionIsSafe) {
  Bound b;
  MapActor stranger("stranger", [](const Token& t) { return t; });
  EXPECT_EQ(b.sched->GetState(&stranger), ActorState::kInactive);
  EXPECT_EQ(b.sched->QueuedWindows(&stranger), 0u);
  EXPECT_EQ(b.sched->BufferedWindows(&stranger), 0u);
  EXPECT_FALSE(b.sched->PopWindow(&stranger).has_value());
}

TEST(AbstractSchedulerDeathTest, EnqueueForUnknownActorAborts) {
  Bound b;
  MapActor stranger("stranger", [](const Token& t) { return t; });
  EXPECT_DEATH(b.sched->Enqueue(&stranger, MakeRW(&b.rig, 0, 1)),
               "unregistered actor");
}

TEST(AbstractSchedulerTest, DesignerPrioritiesPickedUpAtInitialize) {
  PipelineRig rig;
  auto sched = std::make_unique<QBSScheduler>();
  sched->SetActorPriority("stage_a", 5);
  QBSScheduler* sp = sched.get();
  SCWFDirector d(std::move(sched));
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  // Reflected in the quantum: priority 5 gets (40-5)*4b.
  EXPECT_DOUBLE_EQ(sp->QuantumFor(5), 35 * 4 * 500.0);
}

TEST(AbstractSchedulerTest, EnqueueFeedsArrivalStatistics) {
  Bound b;
  b.rig.clock.AdvanceTo(Timestamp::Seconds(1));
  b.sched->Enqueue(b.rig.stage_a, MakeRW(&b.rig, 500, 1));
  EXPECT_EQ(b.director.stats().Get(b.rig.stage_a).events_arrived, 1u);
}

TEST(AbstractSchedulerTest, GetNextActorNullWhenNothingActive) {
  Bound b;
  b.rig.feed->Close();  // source exhausted, no events anywhere
  EXPECT_EQ(b.sched->GetNextActor(), nullptr);
  EXPECT_FALSE(b.sched->HasImmediateWork());
}

}  // namespace
}  // namespace cwf

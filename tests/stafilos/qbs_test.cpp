#include <gtest/gtest.h>

#include "sched_test_util.h"
#include "stafilos/qbs_scheduler.h"

namespace cwf {
namespace {

using schedtest::PipelineRig;

TEST(QBSTest, QuantumFormulaEquation1) {
  QBSOptions opt;
  opt.basic_quantum = 500;
  QBSScheduler s(opt);
  // p >= 20: (40-p)*b
  EXPECT_DOUBLE_EQ(s.QuantumFor(20), 20 * 500.0);
  EXPECT_DOUBLE_EQ(s.QuantumFor(39), 1 * 500.0);
  // p < 20: (40-p)*4b
  EXPECT_DOUBLE_EQ(s.QuantumFor(19), 21 * 4 * 500.0);
  EXPECT_DOUBLE_EQ(s.QuantumFor(5), 35 * 4 * 500.0);
  EXPECT_DOUBLE_EQ(s.QuantumFor(10), 30 * 4 * 500.0);
}

TEST(QBSTest, ProcessesPipelineCompletely) {
  PipelineRig rig;
  rig.PushN(50);
  rig.feed->Close();
  SCWFDirector d(std::make_unique<QBSScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(rig.sink->count(), 50u);
}

TEST(QBSTest, HigherPriorityActorRunsFirst) {
  // Two parallel branches; the priority-5 branch must complete before the
  // priority-30 branch under contention.
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* hot = wf.AddActor<MapActor>("hot", [](const Token& t) { return t; });
  auto* cold = wf.AddActor<MapActor>("cold", [](const Token& t) { return t; });
  auto* hot_sink = wf.AddActor<CollectorSink>("hot_sink");
  auto* cold_sink = wf.AddActor<CollectorSink>("cold_sink");
  ASSERT_TRUE(wf.Connect(src->out(), hot->in()).ok());
  ASSERT_TRUE(wf.Connect(src->out(), cold->in()).ok());
  ASSERT_TRUE(wf.Connect(hot->out(), hot_sink->in()).ok());
  ASSERT_TRUE(wf.Connect(cold->out(), cold_sink->in()).ok());
  auto sched = std::make_unique<QBSScheduler>();
  sched->SetActorPriority("hot", 5);
  sched->SetActorPriority("hot_sink", 5);
  sched->SetActorPriority("cold", 30);
  sched->SetActorPriority("cold_sink", 30);
  for (int i = 0; i < 50; ++i) {
    feed->Push(Token(i), Timestamp(0));
  }
  feed->Close();
  VirtualClock clock;
  CostModel cm;
  cm.SetDefault({1000, 0, 0});
  SCWFDirector d(std::move(sched));
  ASSERT_TRUE(d.Initialize(&wf, &clock, &cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  ASSERT_EQ(hot_sink->count(), 50u);
  ASSERT_EQ(cold_sink->count(), 50u);
  // The hot branch's average completion time is earlier.
  auto avg_completion = [](const CollectorSink& sink) {
    double sum = 0;
    for (const auto& r : sink.TakeSnapshot()) {
      sum += r.completed_at.seconds();
    }
    return sum / static_cast<double>(sink.count());
  };
  EXPECT_LT(avg_completion(*hot_sink), avg_completion(*cold_sink));
}

TEST(QBSTest, QuantumExhaustionMovesActorToWaiting) {
  PipelineRig rig;
  rig.cm.SetActorCost("stage_a", {30000, 0, 0});  // huge cost per firing
  QBSOptions opt;
  opt.basic_quantum = 100;  // tiny quanta: exhaust after one firing
  auto sched = std::make_unique<QBSScheduler>(opt);
  QBSScheduler* sp = sched.get();
  rig.PushN(10);
  rig.feed->Close();
  SCWFDirector d(std::move(sched));
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  // Everything still completes (re-quantification revives WAITING actors).
  EXPECT_EQ(rig.sink->count(), 10u);
  EXPECT_GT(sp->iteration_count(), 1u);
}

TEST(QBSTest, SourceIntervalSmoothsInjection) {
  // With a source interval of 1 the source is offered after every internal
  // firing; with a huge interval it only runs when nothing else is active.
  auto run = [](int interval) {
    PipelineRig rig;
    rig.PushN(30);
    rig.feed->Close();
    QBSOptions opt;
    opt.source_interval = interval;
    SCWFDirector d(std::make_unique<QBSScheduler>(opt));
    CWF_CHECK(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
    CWF_CHECK(d.Run(Timestamp::Max()).ok());
    return rig.sink->count();
  };
  EXPECT_EQ(run(1), 30u);
  EXPECT_EQ(run(1000), 30u);
}

TEST(QBSTest, BankedQuantumIsCapped) {
  QBSOptions opt;
  opt.basic_quantum = 500;
  opt.max_banked_epochs = 2;
  PipelineRig rig;
  auto sched = std::make_unique<QBSScheduler>(opt);
  QBSScheduler* sp = sched.get();
  rig.PushN(5, Timestamp::Seconds(100));  // idle until t=100
  rig.feed->Close();
  SCWFDirector d(std::move(sched));
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(rig.sink->count(), 5u);
  (void)sp;
}

TEST(QBSTest, FifoTieBreakWithinPriorityClass) {
  QBSScheduler s;
  EXPECT_STREQ(s.name(), "QBS");
}

}  // namespace
}  // namespace cwf

#include <gtest/gtest.h>

#include "sched_test_util.h"
#include "stafilos/edf_scheduler.h"
#include "stafilos/fifo_scheduler.h"

namespace cwf {
namespace {

using schedtest::PipelineRig;

TEST(FIFOTest, ProcessesPipelineInOrder) {
  PipelineRig rig;
  rig.PushN(25);
  rig.feed->Close();
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  auto got = rig.sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 25u);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(got[i].token.AsInt(), (i + 1) * 2);
  }
}

TEST(EDFTest, ProcessesPipelineCompletely) {
  PipelineRig rig;
  rig.PushN(25);
  rig.feed->Close();
  SCWFDirector d(std::make_unique<EDFScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(rig.sink->count(), 25u);
}

TEST(EDFTest, OldestExternalEventDrainedFirst) {
  // Two branches hold events of different ages; EDF must service the branch
  // whose head event is older, regardless of arrival-at-scheduler order.
  Workflow wf("w");
  auto feed_old = std::make_shared<PushChannel>();
  auto feed_new = std::make_shared<PushChannel>();
  auto* s_old = wf.AddActor<StreamSourceActor>("s_old", feed_old);
  auto* s_new = wf.AddActor<StreamSourceActor>("s_new", feed_new);
  auto* m_old = wf.AddActor<MapActor>("m_old", [](const Token& t) { return t; });
  auto* m_new = wf.AddActor<MapActor>("m_new", [](const Token& t) { return t; });
  auto* sink_old = wf.AddActor<CollectorSink>("sink_old");
  auto* sink_new = wf.AddActor<CollectorSink>("sink_new");
  ASSERT_TRUE(wf.Connect(s_old->out(), m_old->in()).ok());
  ASSERT_TRUE(wf.Connect(s_new->out(), m_new->in()).ok());
  ASSERT_TRUE(wf.Connect(m_old->out(), sink_old->in()).ok());
  ASSERT_TRUE(wf.Connect(m_new->out(), sink_new->in()).ok());
  // Old tuples arrived at t=0 but both become processable at t=10.
  feed_old->Push(Token(1), Timestamp::Seconds(0));
  feed_new->Push(Token(2), Timestamp::Seconds(10));
  feed_old->Close();
  feed_new->Close();
  VirtualClock clock;
  clock.AdvanceTo(Timestamp::Seconds(10));
  CostModel cm;
  cm.SetDefault({1000, 0, 0});
  SCWFDirector d(std::make_unique<EDFScheduler>());
  ASSERT_TRUE(d.Initialize(&wf, &clock, &cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  ASSERT_EQ(sink_old->count(), 1u);
  ASSERT_EQ(sink_new->count(), 1u);
  EXPECT_LE(sink_old->TakeSnapshot()[0].completed_at,
            sink_new->TakeSnapshot()[0].completed_at);
}

TEST(FIFOTest, Names) {
  EXPECT_STREQ(FIFOScheduler().name(), "FIFO");
  EXPECT_STREQ(EDFScheduler().name(), "EDF");
}

}  // namespace
}  // namespace cwf

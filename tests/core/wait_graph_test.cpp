#include "core/wait_graph.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/actor.h"
#include "core/receiver.h"

namespace cwf {
namespace {

class Inert : public Actor {
 public:
  explicit Inert(std::string name) : Actor(std::move(name)) {}
  Status Fire() override { return Status::OK(); }
};

class StubReceiver : public Receiver {
 public:
  StubReceiver() : Receiver(nullptr) {}
  Status Put(const CWEvent&) override { return Status::OK(); }
  bool HasWindow() const override { return false; }
  std::optional<Window> Get() override { return std::nullopt; }
  size_t ReadyWindowCount() const override { return 0; }
};

WaitNode PutNode(const Actor* waiter, const Actor* target,
                 const std::string& channel, size_t capacity = 2) {
  WaitNode node;
  node.actor = waiter;
  node.actor_name = waiter->name();
  node.put_blocked = true;
  node.put_targets.push_back(
      WaitTarget{target, nullptr, channel, capacity});
  return node;
}

WaitNode GetNode(const Actor* waiter,
                 std::vector<std::vector<const Actor*>> ports) {
  WaitNode node;
  node.actor = waiter;
  node.actor_name = waiter->name();
  node.put_blocked = false;
  for (const auto& alternatives : ports) {
    std::vector<WaitTarget> port;
    for (const Actor* producer : alternatives) {
      port.push_back(WaitTarget{
          producer, nullptr,
          producer->name() + ".out -> " + waiter->name() + ".in[0]", 0});
    }
    node.get_ports.push_back(std::move(port));
  }
  return node;
}

// ---- EvaluateWaitGraph: pure snapshot evaluation ----

TEST(EvaluateWaitGraphTest, PutGetTwoCycleIsDead) {
  Inert a("A"), b("B");
  std::vector<WaitNode> blocked;
  blocked.push_back(PutNode(&a, &b, "A.out -> B.in[0]"));
  blocked.push_back(GetNode(&b, {{&a}}));
  const DeadlockReport report = EvaluateWaitGraph(blocked);
  ASSERT_EQ(report.dead.size(), 2u);
  ASSERT_FALSE(report.cycle.empty());
  // The witness cycle closes: last edge's target is the first edge's waiter.
  EXPECT_EQ(report.cycle.front().waiter,
            report.cycle.back().waits_on);
  EXPECT_NE(report.CycleString().find("A"), std::string::npos);
  EXPECT_NE(report.CycleString().find("B"), std::string::npos);
}

TEST(EvaluateWaitGraphTest, ChainOntoLiveActorIsLive) {
  Inert a("A"), b("B"), c("C");
  // A put-waits on B, B get-waits on C; C is absent (hence live), so the
  // liveness fixpoint clears the whole chain.
  std::vector<WaitNode> blocked;
  blocked.push_back(PutNode(&a, &b, "A.out -> B.in[0]"));
  blocked.push_back(GetNode(&b, {{&c}}));
  const DeadlockReport report = EvaluateWaitGraph(blocked);
  EXPECT_TRUE(report.empty());
  EXPECT_TRUE(report.cycle.empty());
}

TEST(EvaluateWaitGraphTest, FanInLiveAlternativeRescuesThePort) {
  Inert a("A"), b("B"), c("C");
  // B's one port can be fed by A (dead: waits back on B) or C (live):
  // ANY alternative suffices, so B is live, and then so is A.
  std::vector<WaitNode> blocked;
  blocked.push_back(PutNode(&a, &b, "A.out -> B.in[0]"));
  blocked.push_back(GetNode(&b, {{&a, &c}}));
  EXPECT_TRUE(EvaluateWaitGraph(blocked).empty());
}

TEST(EvaluateWaitGraphTest, AllPortsMustBeSatisfied) {
  Inert a("A"), b("B"), c("C");
  // B needs a window on BOTH ports; the second port's only producer is A,
  // which put-waits on B — that port can never be satisfied.
  std::vector<WaitNode> blocked;
  blocked.push_back(PutNode(&a, &b, "A.out -> B.in[1]"));
  blocked.push_back(GetNode(&b, {{&c}, {&a}}));
  const DeadlockReport report = EvaluateWaitGraph(blocked);
  ASSERT_EQ(report.dead.size(), 2u);
}

TEST(EvaluateWaitGraphTest, EmptySnapshotIsLive) {
  EXPECT_TRUE(EvaluateWaitGraph({}).empty());
}

TEST(EvaluateWaitGraphTest, ReportRendersEdgesAndDeadSet) {
  Inert a("A"), b("B");
  std::vector<WaitNode> blocked;
  blocked.push_back(PutNode(&a, &b, "A.out -> B.in[0]", 2));
  blocked.push_back(GetNode(&b, {{&a}}));
  const DeadlockReport report = EvaluateWaitGraph(blocked);
  const std::string rendered = report.ToString();
  EXPECT_NE(rendered.find("artificial deadlock"), std::string::npos);
  EXPECT_NE(rendered.find("unable to progress"), std::string::npos);
  EXPECT_NE(rendered.find("A.out -> B.in[0]"), std::string::npos);
  bool saw_put = false;
  for (const DeadlockEdge& edge : report.cycle) {
    if (edge.put_blocked) {
      saw_put = true;
      EXPECT_NE(edge.ToString().find("blocked put"), std::string::npos);
      EXPECT_NE(edge.ToString().find("capacity 2"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_put);
}

// ---- ChannelWaitGraph: registration bookkeeping ----

TEST(ChannelWaitGraphTest, RegistrationAndSnapshotRoundTrip) {
  Inert producer("P"), consumer("C");
  StubReceiver receiver;
  ChannelWaitGraph graph;
  graph.RegisterChannel(&receiver, &producer, &consumer, "P.out -> C.in[0]");
  EXPECT_EQ(graph.ProducerOf(&receiver), &producer);
  EXPECT_EQ(graph.ChannelName(&receiver), "P.out -> C.in[0]");

  EXPECT_EQ(graph.BlockedCount(), 0u);
  graph.OnPutBlocked(&producer, &receiver);
  EXPECT_EQ(graph.BlockedCount(), 1u);
  std::vector<WaitNode> snapshot = graph.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_TRUE(snapshot[0].put_blocked);
  ASSERT_EQ(snapshot[0].put_targets.size(), 1u);
  EXPECT_EQ(snapshot[0].put_targets[0].actor, &consumer);
  EXPECT_EQ(snapshot[0].put_targets[0].channel, "P.out -> C.in[0]");

  graph.OnPutUnblocked(&producer);
  EXPECT_EQ(graph.BlockedCount(), 0u);
  EXPECT_TRUE(graph.Snapshot().empty());
}

TEST(ChannelWaitGraphTest, UnblockBumpsEpochButReregistrationDoesNot) {
  Inert producer("P"), consumer("C");
  StubReceiver receiver;
  ChannelWaitGraph graph;
  graph.RegisterChannel(&receiver, &producer, &consumer, "P.out -> C.in[0]");

  auto get_ports = [&] {
    return std::vector<std::vector<WaitTarget>>{
        {WaitTarget{&producer, &receiver, "P.out -> C.in[0]", 0}}};
  };
  graph.OnGetBlocked(&consumer, get_ports());
  const uint64_t epoch0 = graph.Snapshot()[0].epoch;
  // Re-registration while still blocked refreshes edges, not the epoch:
  // the watchdog must see a stable candidate across polls.
  graph.OnGetBlocked(&consumer, get_ports());
  EXPECT_EQ(graph.Snapshot()[0].epoch, epoch0);
  // A genuine unblock/reblock bumps it, discarding the candidate.
  graph.OnGetUnblocked(&consumer);
  graph.OnGetBlocked(&consumer, get_ports());
  EXPECT_GT(graph.Snapshot()[0].epoch, epoch0);
}

TEST(ChannelWaitGraphTest, EmptyGetPortListUnregisters) {
  Inert producer("P"), consumer("C");
  StubReceiver receiver;
  ChannelWaitGraph graph;
  graph.RegisterChannel(&receiver, &producer, &consumer, "P.out -> C.in[0]");
  graph.OnGetBlocked(&consumer,
                     {{WaitTarget{&producer, &receiver, "ch", 0}}});
  EXPECT_EQ(graph.BlockedCount(), 1u);
  graph.OnGetBlocked(&consumer, {});
  EXPECT_EQ(graph.BlockedCount(), 0u);
}

TEST(ChannelWaitGraphTest, UnknownReceiverPutIsIgnored) {
  Inert producer("P");
  StubReceiver unregistered;
  ChannelWaitGraph graph;
  graph.OnPutBlocked(&producer, &unregistered);
  EXPECT_EQ(graph.BlockedCount(), 0u);
}

TEST(ChannelWaitGraphTest, ResetForgetsEverything) {
  Inert producer("P"), consumer("C");
  StubReceiver receiver;
  ChannelWaitGraph graph;
  graph.RegisterChannel(&receiver, &producer, &consumer, "P.out -> C.in[0]");
  graph.OnPutBlocked(&producer, &receiver);
  graph.Reset();
  EXPECT_EQ(graph.BlockedCount(), 0u);
  EXPECT_EQ(graph.ProducerOf(&receiver), nullptr);
}

TEST(ChannelWaitGraphTest, ReportHandlerReceivesConfirmedReports) {
  ChannelWaitGraph graph;
  std::string seen;
  graph.SetReportHandlerForTest(
      [&seen](const std::string& report) { seen = report; });
  graph.InvokeReportHandler("CWF6005: test report");
  EXPECT_EQ(seen, "CWF6005: test report");
}

TEST(ScopedCurrentActorTest, NestsAndRestores) {
  Inert outer("outer"), inner("inner");
  EXPECT_EQ(ScopedCurrentActor::Current(), nullptr);
  {
    ScopedCurrentActor a(&outer);
    EXPECT_EQ(ScopedCurrentActor::Current(), &outer);
    {
      ScopedCurrentActor b(&inner);
      EXPECT_EQ(ScopedCurrentActor::Current(), &inner);
    }
    EXPECT_EQ(ScopedCurrentActor::Current(), &outer);
  }
  EXPECT_EQ(ScopedCurrentActor::Current(), nullptr);
}

}  // namespace
}  // namespace cwf

#include <gtest/gtest.h>

#include "actors/library.h"
#include "core/actor.h"
#include "core/clock.h"
#include "test_util.h"

namespace cwf {
namespace {

using testutil::Ev;

class ProbeActor : public Actor {
 public:
  explicit ProbeActor(std::string name) : Actor(std::move(name)) {
    in = AddInputPort("in");
    in2 = AddInputPort("in2");
    out = AddOutputPort("out");
  }
  Status Fire() override { return Status::OK(); }
  InputPort* in;
  InputPort* in2;
  OutputPort* out;
};

TEST(PortTest, NamesAndOwnership) {
  ProbeActor a("A");
  EXPECT_EQ(a.in->name(), "in");
  EXPECT_EQ(a.in->FullName(), "A.in");
  EXPECT_EQ(a.in->actor(), &a);
  EXPECT_EQ(a.GetInputPort("in2"), a.in2);
  EXPECT_EQ(a.GetInputPort("nope"), nullptr);
  EXPECT_EQ(a.GetOutputPort("out"), a.out);
}

TEST(PortDeathTest, DuplicatePortNameAborts) {
  ProbeActor a("A");
  EXPECT_DEATH(a.AddInputPort("in"), "duplicate input port");
  EXPECT_DEATH(a.AddOutputPort("out"), "duplicate output port");
}

TEST(InputPortTest, ReceiverChannels) {
  ProbeActor a("A");
  EXPECT_EQ(a.in->ChannelCount(), 0u);
  EXPECT_EQ(a.in->receiver(0), nullptr);
  Receiver* r0 = a.in->SetReceiver(0, std::make_unique<QueueReceiver>(a.in));
  Receiver* r2 = a.in->SetReceiver(2, std::make_unique<QueueReceiver>(a.in));
  EXPECT_EQ(a.in->ChannelCount(), 3u);
  EXPECT_EQ(a.in->receiver(0), r0);
  EXPECT_EQ(a.in->receiver(1), nullptr);
  EXPECT_EQ(a.in->receiver(2), r2);
}

TEST(InputPortTest, GetScansChannelsInOrder) {
  ProbeActor a("A");
  a.in->SetReceiver(0, std::make_unique<QueueReceiver>(a.in));
  a.in->SetReceiver(1, std::make_unique<QueueReceiver>(a.in));
  ASSERT_TRUE(a.in->receiver(1)->Put(Ev(Token(2), 10)).ok());
  ASSERT_TRUE(a.in->receiver(0)->Put(Ev(Token(1), 20)).ok());
  EXPECT_TRUE(a.in->HasWindow());
  EXPECT_TRUE(a.in->HasWindowOn(0));
  EXPECT_EQ(a.in->ReadyWindowCount(), 2u);
  // Channel 0 drained first.
  EXPECT_EQ(a.in->Get()->events[0].token.AsInt(), 1);
  EXPECT_EQ(a.in->Get()->events[0].token.AsInt(), 2);
  EXPECT_FALSE(a.in->Get().has_value());
}

TEST(InputPortTest, GetUpdatesFiringContext) {
  ProbeActor a("A");
  a.in->SetReceiver(0, std::make_unique<QueueReceiver>(a.in));
  CWEvent e = Ev(Token(5), 123, /*root=*/9, /*seq=*/77);
  ASSERT_TRUE(a.in->receiver(0)->Put(e).ok());
  a.BeginFiring();
  EXPECT_FALSE(a.firing_context().valid);
  a.in->Get();
  ASSERT_TRUE(a.firing_context().valid);
  EXPECT_EQ(a.firing_context().timestamp, Timestamp(123));
  EXPECT_EQ(a.firing_context().wave, WaveTag::Root(9));
  EXPECT_EQ(a.firing_context().max_seq, 77u);
  EXPECT_EQ(a.firing_context().events_consumed, 1u);
}

TEST(FiringContextTest, AbsorbKeepsNewestBySeq) {
  FiringContext fc;
  Window w1;
  w1.events.push_back(Ev(Token(1), 100, 1, 5));
  Window w2;
  w2.events.push_back(Ev(Token(2), 50, 2, 9));
  fc.Absorb(w1);
  fc.Absorb(w2);
  EXPECT_EQ(fc.wave, WaveTag::Root(2));  // seq 9 wins
  EXPECT_EQ(fc.timestamp, Timestamp(50));
  EXPECT_EQ(fc.events_consumed, 2u);
}

TEST(ActorTest, DefaultPrefireRequiresAllConnectedPorts) {
  ProbeActor a("A");
  // No connected ports: prefire is vacuously true.
  EXPECT_TRUE(a.Prefire().value());
  a.in->SetReceiver(0, std::make_unique<QueueReceiver>(a.in));
  a.in2->SetReceiver(0, std::make_unique<QueueReceiver>(a.in2));
  EXPECT_FALSE(a.Prefire().value());
  ASSERT_TRUE(a.in->receiver(0)->Put(Ev(Token(1), 1)).ok());
  EXPECT_FALSE(a.Prefire().value());  // in2 still empty
  ASSERT_TRUE(a.in2->receiver(0)->Put(Ev(Token(2), 2)).ok());
  EXPECT_TRUE(a.Prefire().value());
}

TEST(ActorTest, IsSourceTracksConnectedInputs) {
  ProbeActor a("A");
  EXPECT_TRUE(a.IsSource());
  a.in->SetReceiver(0, std::make_unique<QueueReceiver>(a.in));
  EXPECT_FALSE(a.IsSource());
}

TEST(ActorTest, SendBuffersUntilTaken) {
  ProbeActor a("A");
  a.Send(a.out, Token(1));
  a.SendStamped(a.out, Token(2), Timestamp(55));
  auto pending = a.TakePendingOutputs();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0].token.AsInt(), 1);
  EXPECT_FALSE(pending[0].external_timestamp.has_value());
  EXPECT_EQ(pending[1].external_timestamp.value(), Timestamp(55));
  EXPECT_TRUE(a.TakePendingOutputs().empty());
}

TEST(ActorDeathTest, SendOnForeignPortAborts) {
  ProbeActor a("A");
  ProbeActor b("B");
  EXPECT_DEATH(a.Send(b.out, Token(1)), "not owned");
}

TEST(ActorTest, BeginFiringClearsState) {
  ProbeActor a("A");
  a.Send(a.out, Token(1));
  a.in->SetReceiver(0, std::make_unique<QueueReceiver>(a.in));
  ASSERT_TRUE(a.in->receiver(0)->Put(Ev(Token(9), 5)).ok());
  a.in->Get();
  EXPECT_TRUE(a.firing_context().valid);
  a.BeginFiring();
  EXPECT_FALSE(a.firing_context().valid);
  EXPECT_TRUE(a.TakePendingOutputs().empty());
}

TEST(OutputPortTest, BroadcastReachesAllRemoteReceivers) {
  ProbeActor a("A"), b("B"), c("C");
  b.in->SetReceiver(0, std::make_unique<QueueReceiver>(b.in));
  c.in->SetReceiver(0, std::make_unique<QueueReceiver>(c.in));
  a.out->AddRemoteReceiver(b.in->receiver(0));
  a.out->AddRemoteReceiver(c.in->receiver(0));
  ASSERT_TRUE(a.out->Broadcast(Ev(Token(3), 1)).ok());
  EXPECT_TRUE(b.in->HasWindow());
  EXPECT_TRUE(c.in->HasWindow());
}

TEST(LibraryActorTest, MapActorTransforms) {
  MapActor map("double", [](const Token& t) { return Token(t.AsInt() * 2); });
  map.in()->SetReceiver(0, std::make_unique<QueueReceiver>(map.in()));
  ExecutionContext ctx;
  VirtualClock clock;
  ctx.clock = &clock;
  ASSERT_TRUE(map.Initialize(&ctx).ok());
  ASSERT_TRUE(map.in()->receiver(0)->Put(Ev(Token(21), 1)).ok());
  map.BeginFiring();
  ASSERT_TRUE(map.Fire().ok());
  auto out = map.TakePendingOutputs();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].token.AsInt(), 42);
}

TEST(LibraryActorTest, FilterActorDropsNonMatching) {
  FilterActor f("evens", [](const Token& t) { return t.AsInt() % 2 == 0; });
  f.in()->SetReceiver(0, std::make_unique<QueueReceiver>(f.in()));
  ExecutionContext ctx;
  VirtualClock clock;
  ctx.clock = &clock;
  ASSERT_TRUE(f.Initialize(&ctx).ok());
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(f.in()->receiver(0)->Put(Ev(Token(i), i)).ok());
  }
  int emitted = 0;
  while (f.Prefire().value()) {
    f.BeginFiring();
    ASSERT_TRUE(f.Fire().ok());
    emitted += static_cast<int>(f.TakePendingOutputs().size());
  }
  EXPECT_EQ(emitted, 2);  // 2 and 4
}

TEST(LibraryActorTest, FlatMapFansOut) {
  FlatMapActor fm("explode", [](const Token& t) {
    return std::vector<Token>{t, t, t};
  });
  fm.in()->SetReceiver(0, std::make_unique<QueueReceiver>(fm.in()));
  ExecutionContext ctx;
  VirtualClock clock;
  ctx.clock = &clock;
  ASSERT_TRUE(fm.Initialize(&ctx).ok());
  ASSERT_TRUE(fm.in()->receiver(0)->Put(Ev(Token(1), 1)).ok());
  fm.BeginFiring();
  ASSERT_TRUE(fm.Fire().ok());
  EXPECT_EQ(fm.TakePendingOutputs().size(), 3u);
}

}  // namespace
}  // namespace cwf

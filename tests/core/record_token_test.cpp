#include <gtest/gtest.h>

#include "core/token.h"
#include "test_util.h"

namespace cwf {
namespace {

using testutil::Rec;

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(int64_t{4}).is_int());
  EXPECT_TRUE(Value(4).is_int());
  EXPECT_TRUE(Value(4.5).is_double());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value("x").is_string());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(7).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Value(3).AsDouble(), 3.0);  // int widens
  EXPECT_TRUE(Value(true).AsBool());
  EXPECT_EQ(Value("hey").AsString(), "hey");
}

TEST(ValueDeathTest, WrongAccessorAborts) {
  EXPECT_DEATH(Value("s").AsInt(), "not an int");
  EXPECT_DEATH(Value(true).AsDouble(), "not numeric");
}

TEST(ValueTest, TotalOrder) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value(), Value(0));           // null sorts first (type index)
  EXPECT_LT(Value(5), Value(1.0));        // int type before double type
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(ValueTest, EqualityAndHashConsistency) {
  EXPECT_EQ(Value(3), Value(3));
  EXPECT_NE(Value(3), Value(4));
  EXPECT_NE(Value(3), Value(3.0));  // different types
  EXPECT_EQ(Value(3).Hash(), Value(3).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(5).ToString(), "5");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value("q").ToString(), "\"q\"");
}

TEST(RecordTest, SetAndGet) {
  Record r;
  r.Set("a", 1).Set("b", 2.5);
  EXPECT_TRUE(r.Has("a"));
  EXPECT_FALSE(r.Has("z"));
  EXPECT_EQ(r.Get("a").value().AsInt(), 1);
  EXPECT_FALSE(r.Get("z").ok());
  EXPECT_EQ(r.GetOr("z", Value(9)).AsInt(), 9);
  EXPECT_EQ(r.size(), 2u);
}

TEST(RecordTest, SetOverwritesInPlace) {
  Record r;
  r.Set("a", 1).Set("b", 2).Set("a", 3);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.Get("a").value().AsInt(), 3);
  // Field order preserved.
  EXPECT_EQ(r.fields()[0].first, "a");
  EXPECT_EQ(r.fields()[1].first, "b");
}

TEST(RecordTest, EqualityIsFieldwise) {
  Record a, b;
  a.Set("x", 1);
  b.Set("x", 1);
  EXPECT_EQ(a, b);
  b.Set("x", 2);
  EXPECT_FALSE(a == b);
}

TEST(RecordTest, ToString) {
  Record r;
  r.Set("a", 1).Set("b", "z");
  EXPECT_EQ(r.ToString(), "{a=1, b=\"z\"}");
}

TEST(TokenTest, NilDefault) {
  Token t;
  EXPECT_TRUE(t.is_nil());
  EXPECT_EQ(t.ToString(), "nil");
}

TEST(TokenTest, ScalarRoundTrips) {
  EXPECT_EQ(Token(5).AsInt(), 5);
  EXPECT_DOUBLE_EQ(Token(1.25).AsDouble(), 1.25);
  EXPECT_DOUBLE_EQ(Token(5).AsDouble(), 5.0);
  EXPECT_TRUE(Token(true).AsBool());
  EXPECT_EQ(Token("str").AsString(), "str");
}

TEST(TokenTest, RecordFieldShortcut) {
  Token t = Rec({{"car", 42}, {"speed", 55.0}});
  EXPECT_TRUE(t.is_record());
  EXPECT_EQ(t.Field("car").AsInt(), 42);
  EXPECT_DOUBLE_EQ(t.Field("speed").AsDouble(), 55.0);
}

TEST(TokenDeathTest, MissingFieldAborts) {
  Token t = Rec({{"a", 1}});
  EXPECT_DEATH(t.Field("b"), "lacks field");
  EXPECT_DEATH(Token(5).Field("a"), "not a record");
}

TEST(TokenTest, RecordEqualityIsStructural) {
  Token a = Rec({{"x", 1}});
  Token b = Rec({{"x", 1}});
  Token c = Rec({{"x", 2}});
  EXPECT_EQ(a, b);  // different shared_ptrs, equal contents
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == Token(1));
}

TEST(TokenTest, RecordsAreShared) {
  Token a = Rec({{"x", 1}});
  Token b = a;  // copy shares the record
  EXPECT_EQ(a.AsRecord().get(), b.AsRecord().get());
}

TEST(MakeRecordTest, BuildsSharedRecord) {
  RecordPtr r = MakeRecord(std::pair<std::string, Value>{"a", 1},
                           std::pair<std::string, Value>{"b", 2});
  EXPECT_EQ(r->Get("b").value().AsInt(), 2);
}

}  // namespace
}  // namespace cwf

#include <gtest/gtest.h>

#include "core/event.h"
#include "core/wave.h"

namespace cwf {
namespace {

TEST(WaveTagTest, RootProperties) {
  WaveTag t = WaveTag::Root(42);
  EXPECT_EQ(t.root(), 42u);
  EXPECT_EQ(t.depth(), 0u);
  EXPECT_EQ(t.ToString(), "t42");
}

TEST(WaveTagTest, ChildrenFormHierarchy) {
  WaveTag t = WaveTag::Root(7);
  WaveTag c3 = t.Child(3);
  EXPECT_EQ(c3.ToString(), "t7.3");
  EXPECT_EQ(c3.depth(), 1u);
  WaveTag c31 = c3.Child(1);
  EXPECT_EQ(c31.ToString(), "t7.3.1");
  EXPECT_EQ(c31.depth(), 2u);
  EXPECT_EQ(c31.Parent(), c3);
  EXPECT_EQ(c3.Parent(), t);
}

TEST(WaveTagDeathTest, InvalidOperations) {
  EXPECT_DEATH(WaveTag::Root(1).Parent(), "no parent");
  EXPECT_DEATH(WaveTag::Root(1).Child(0), "1-based");
}

TEST(WaveTagTest, ContainsIsReflexiveAndDescendant) {
  WaveTag t = WaveTag::Root(5);
  WaveTag c = t.Child(2);
  WaveTag gc = c.Child(9);
  EXPECT_TRUE(t.Contains(t));
  EXPECT_TRUE(t.Contains(c));
  EXPECT_TRUE(t.Contains(gc));
  EXPECT_TRUE(c.Contains(gc));
  EXPECT_FALSE(c.Contains(t));
  EXPECT_FALSE(t.Child(1).Contains(c));
  EXPECT_FALSE(WaveTag::Root(6).Contains(t));
}

TEST(WaveTagTest, LexicographicOrdering) {
  WaveTag a = WaveTag::Root(1);
  WaveTag b = WaveTag::Root(2);
  EXPECT_LT(a, b);
  EXPECT_LT(a, a.Child(1));              // prefix before extension
  EXPECT_LT(a.Child(1), a.Child(2));
  EXPECT_LT(a.Child(1).Child(5), a.Child(2));
}

TEST(WaveTagTest, EqualityAndInequality) {
  WaveTag a = WaveTag::Root(3).Child(1);
  WaveTag b = WaveTag::Root(3).Child(1);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, WaveTag::Root(3).Child(2));
  EXPECT_NE(a, WaveTag::Root(4).Child(1));
}

TEST(CWEventTest, ToStringIncludesWaveAndLastMark) {
  CWEvent e(Token(9), Timestamp::Seconds(2), WaveTag::Root(8).Child(1));
  EXPECT_NE(e.ToString().find("t8.1"), std::string::npos);
  EXPECT_EQ(e.ToString().find("[last]"), std::string::npos);
  e.last_in_wave = true;
  EXPECT_NE(e.ToString().find("[last]"), std::string::npos);
}

TEST(WindowStructTest, OldestTimestamp) {
  Window w;
  EXPECT_EQ(w.OldestTimestamp(), Timestamp::Max());
  w.events.push_back(CWEvent(Token(1), Timestamp(50), WaveTag::Root(1)));
  w.events.push_back(CWEvent(Token(2), Timestamp(20), WaveTag::Root(2)));
  w.events.push_back(CWEvent(Token(3), Timestamp(90), WaveTag::Root(3)));
  EXPECT_EQ(w.OldestTimestamp(), Timestamp(20));
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.front().token.AsInt(), 1);
  EXPECT_EQ(w.back().token.AsInt(), 3);
  EXPECT_EQ(w[1].token.AsInt(), 2);
}

}  // namespace
}  // namespace cwf

// The channel type lattice (core/schema.h): scalar-kind sets, record
// layouts with O(1) field lookup, TokenType join/subtyping, and runtime
// token validation (the CWF7008 payload).

#include "core/schema.h"

#include <gtest/gtest.h>

#include "core/record.h"
#include "core/token.h"

namespace cwf {
namespace {

TEST(ScalarTypeTest, UnionSubtypeIntersect) {
  const ScalarType num = ScalarType::Int().Union(ScalarType::Double());
  EXPECT_TRUE(ScalarType::Int().IsSubtypeOf(num));
  EXPECT_TRUE(ScalarType::Double().IsSubtypeOf(num));
  EXPECT_FALSE(num.IsSubtypeOf(ScalarType::Int()));
  EXPECT_TRUE(num.Intersects(ScalarType::Int()));
  EXPECT_FALSE(num.Intersects(ScalarType::Str()));
  EXPECT_TRUE(ScalarType::None().IsSubtypeOf(ScalarType::Int()));
  EXPECT_TRUE(num.IsSubtypeOf(ScalarType::Any()));
  EXPECT_TRUE(ScalarType::Any().is_any());
}

TEST(ScalarTypeTest, AcceptsMatchesRuntimeKind) {
  EXPECT_TRUE(ScalarType::Int().Accepts(Value(int64_t{7})));
  EXPECT_FALSE(ScalarType::Int().Accepts(Value(7.5)));
  EXPECT_TRUE(ScalarType::Null().Accepts(Value()));
  EXPECT_FALSE(ScalarType::Str().Accepts(Value(true)));
  EXPECT_TRUE(ScalarType::Any().Accepts(Value("s")));
}

TEST(ScalarTypeTest, ToStringNamesKinds) {
  EXPECT_EQ(ScalarType::Int().ToString(), "int");
  EXPECT_EQ(ScalarType::Any().ToString(), "any");
  EXPECT_EQ(ScalarType::None().ToString(), "none");
}

TEST(RecordSchemaTest, IndexMapGivesConstantTimeLookup) {
  RecordSchema s;
  s.Int("time").Int("car").Double("speed").Str("tag");
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.IndexOf("time"), 0);
  EXPECT_EQ(s.IndexOf("speed"), 2);
  EXPECT_EQ(s.IndexOf("absent"), -1);
  ASSERT_NE(s.Find("tag"), nullptr);
  EXPECT_EQ(s.Find("tag")->type, ScalarType::Str());
  EXPECT_EQ(s.Find("absent"), nullptr);
}

TEST(RecordSchemaTest, IndexPairsWithPositionalRecordAccess) {
  RecordSchema s;
  s.Int("a").Double("b").Str("c");
  Record rec;
  rec.Set("a", Value(1)).Set("b", Value(2.5)).Set("c", Value("x"));
  // Resolve once, access by position — the hot-path pattern.
  const int b = s.IndexOf("b");
  ASSERT_GE(b, 0);
  EXPECT_EQ(rec.ValueAt(static_cast<size_t>(b)).AsDouble(), 2.5);
  EXPECT_EQ(rec.NameAt(static_cast<size_t>(b)), "b");
  Token tok(std::make_shared<Record>(rec));
  EXPECT_EQ(tok.FieldAt(static_cast<size_t>(s.IndexOf("c"))).AsString(), "x");
}

TEST(RecordSchemaTest, JoinUnionsCommonFieldsAndDemotesOneSided) {
  RecordSchema a;
  a.Int("k").Int("x");
  RecordSchema b;
  b.Field("k", ScalarType::Double()).Str("y");
  const RecordSchema j = RecordSchema::JoinOf(a, b);
  ASSERT_NE(j.Find("k"), nullptr);
  EXPECT_EQ(j.Find("k")->type, ScalarType::Int().Union(ScalarType::Double()));
  EXPECT_TRUE(j.Find("k")->required);
  ASSERT_NE(j.Find("x"), nullptr);
  EXPECT_FALSE(j.Find("x")->required);  // one-sided -> optional
  ASSERT_NE(j.Find("y"), nullptr);
  EXPECT_FALSE(j.Find("y")->required);
  // a's fields first, then b's extras.
  EXPECT_EQ(j.IndexOf("k"), 0);
  EXPECT_EQ(j.IndexOf("x"), 1);
  EXPECT_EQ(j.IndexOf("y"), 2);
}

TEST(RecordSchemaTest, ToStringMarksOptionalFields) {
  RecordSchema s;
  s.Int("t").Field("v", ScalarType::Double(), /*required=*/false);
  EXPECT_EQ(s.ToString(), "{t:int, v:double?}");
}

TEST(TokenTypeTest, LatticeBracketsUnknownAndAny) {
  EXPECT_TRUE(TokenType::Unknown().is_unknown());
  EXPECT_TRUE(TokenType::Any().is_any());
  EXPECT_TRUE(TokenType::Int().IsSubtypeOf(TokenType::Any()));
  EXPECT_FALSE(TokenType::Any().IsSubtypeOf(TokenType::Int()));
  // Unknown is bottom: the empty kind-set is vacuously a subtype of every
  // type (the pass treats undeclared channels permissively for this reason).
  EXPECT_TRUE(TokenType::Unknown().IsSubtypeOf(TokenType::Int()));
  EXPECT_EQ(TokenType::Int().Join(TokenType::Unknown()), TokenType::Int());
  EXPECT_EQ(TokenType::Int().Join(TokenType::Any()), TokenType::Any());
}

TEST(TokenTypeTest, JoinOfScalarsUnionsKinds) {
  const TokenType t = TokenType::Int().Join(TokenType::Double());
  EXPECT_TRUE(TokenType::Int().IsSubtypeOf(t));
  EXPECT_TRUE(TokenType::Double().IsSubtypeOf(t));
  EXPECT_FALSE(t.IsSubtypeOf(TokenType::Int()));
  EXPECT_FALSE(t.allows_nil());
  EXPECT_TRUE(TokenType::Int().OrNil().allows_nil());
  EXPECT_TRUE(TokenType::Nil().is_nil_only());
}

TEST(TokenTypeTest, JoinOfRecordsJoinsLayouts) {
  RecordSchema a;
  a.Int("k").Int("x");
  RecordSchema b;
  b.Int("k").Str("y");
  const TokenType t = TokenType::Record(a).Join(TokenType::Record(b));
  ASSERT_TRUE(t.allows_record());
  ASSERT_NE(t.record_schema(), nullptr);
  EXPECT_NE(t.record_schema()->Find("x"), nullptr);
  EXPECT_NE(t.record_schema()->Find("y"), nullptr);
}

TEST(TokenTypeTest, RecordSubtypingChecksRequiredFields) {
  RecordSchema have;
  have.Int("time").Int("car").Double("speed");
  RecordSchema need;
  need.Int("time").Double("speed");
  // Extra fields on the producer side are fine.
  EXPECT_TRUE(TokenType::Record(have).IsSubtypeOf(TokenType::Record(need)));
  RecordSchema more;
  more.Int("time").Double("speed").Str("tag");
  EXPECT_FALSE(TokenType::Record(have).IsSubtypeOf(TokenType::Record(more)));
}

TEST(TokenTypeTest, CheckTokenValidatesKinds) {
  EXPECT_TRUE(TokenType::Int().CheckToken(Token(7)).ok());
  EXPECT_FALSE(TokenType::Int().CheckToken(Token("seven")).ok());
  EXPECT_FALSE(TokenType::Int().CheckToken(Token()).ok());  // nil
  EXPECT_TRUE(TokenType::Int().OrNil().CheckToken(Token()).ok());
  EXPECT_TRUE(TokenType::Any().CheckToken(Token("anything")).ok());
  EXPECT_TRUE(TokenType::Unknown().CheckToken(Token("anything")).ok());
}

TEST(TokenTypeTest, CheckTokenValidatesRecordFields) {
  RecordSchema s;
  s.Int("time").Double("speed");
  const TokenType t = TokenType::Record(s);

  auto good = std::make_shared<Record>();
  good->Set("time", Value(9)).Set("speed", Value(55.0));
  EXPECT_TRUE(t.CheckToken(Token(RecordPtr(good))).ok());

  // Extra fields are permissive (supersets flow through shared channels).
  auto extra = std::make_shared<Record>();
  extra->Set("time", Value(9)).Set("speed", Value(55.0)).Set("x", Value(1));
  EXPECT_TRUE(t.CheckToken(Token(RecordPtr(extra))).ok());

  auto missing = std::make_shared<Record>();
  missing->Set("time", Value(9));
  const Status miss = t.CheckToken(Token(RecordPtr(missing)));
  ASSERT_FALSE(miss.ok());
  EXPECT_NE(miss.message().find("speed"), std::string::npos);

  auto wrong = std::make_shared<Record>();
  wrong->Set("time", Value(9)).Set("speed", Value("fast"));
  const Status bad = t.CheckToken(Token(RecordPtr(wrong)));
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("speed"), std::string::npos);

  EXPECT_FALSE(t.CheckToken(Token(7)).ok());  // scalar into record type
}

TEST(TokenTypeTest, ToStringIsReadable) {
  EXPECT_EQ(TokenType::Unknown().ToString(), "unknown");
  EXPECT_EQ(TokenType::Any().ToString(), "any");
  RecordSchema s;
  s.Int("t");
  EXPECT_EQ(TokenType::Record(s).ToString(), "record{t:int}");
  EXPECT_NE(TokenType::Int().OrNil().ToString().find("nil"),
            std::string::npos);
}

}  // namespace
}  // namespace cwf

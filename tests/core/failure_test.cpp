// Failure injection: errors raised inside actor lifecycle methods must
// propagate out of every director's Run()/Initialize() instead of being
// swallowed, and logging/cost-model plumbing must behave.

#include <gtest/gtest.h>

#include "actors/library.h"
#include "common/logging.h"
#include "directors/ddf_director.h"
#include "directors/scwf_director.h"
#include "directors/sdf_director.h"
#include "stafilos/fifo_scheduler.h"
#include "stream/stream_source.h"

namespace cwf {
namespace {

class FaultyActor : public Actor {
 public:
  enum class FailAt { kInitialize, kPrefire, kFire, kPostfire, kWrapup };

  FaultyActor(FailAt mode, int after_firings = 0)
      : Actor("faulty"), mode_(mode), after_(after_firings) {
    in_ = AddInputPort("in");
    out_ = AddOutputPort("out");
  }

  Status Initialize(ExecutionContext* ctx) override {
    CWF_RETURN_NOT_OK(Actor::Initialize(ctx));
    if (mode_ == FailAt::kInitialize) {
      return Status::Internal("init exploded");
    }
    return Status::OK();
  }

  Result<bool> Prefire() override {
    if (mode_ == FailAt::kPrefire && in_->HasWindow()) {
      return Status::Internal("prefire exploded");
    }
    return Actor::Prefire();
  }

  Status Fire() override {
    auto w = in_->Get();
    if (mode_ == FailAt::kFire && fired_ >= after_) {
      return Status::Internal("fire exploded");
    }
    ++fired_;
    if (w.has_value()) {
      Send(out_, w->events[0].token);
    }
    return Status::OK();
  }

  Result<bool> Postfire() override {
    if (mode_ == FailAt::kPostfire) {
      return Status::Internal("postfire exploded");
    }
    return true;
  }

  Status Wrapup() override {
    if (mode_ == FailAt::kWrapup) {
      return Status::Internal("wrapup exploded");
    }
    return Status::OK();
  }

  InputPort* in_;
  OutputPort* out_;
  int fired_ = 0;

 private:
  FailAt mode_;
  int after_;
};

struct Rig {
  Workflow wf{"w"};
  std::shared_ptr<PushChannel> feed = std::make_shared<PushChannel>();
  FaultyActor* faulty;
  VirtualClock clock;
  CostModel cm;

  explicit Rig(FaultyActor::FailAt mode, int after = 0) {
    auto* src = wf.AddActor<StreamSourceActor>("src", feed);
    faulty = wf.AddActor<FaultyActor>(mode, after);
    auto* sink = wf.AddActor<NullSink>("sink");
    CWF_CHECK(wf.Connect(src->out(), faulty->in_).ok());
    CWF_CHECK(wf.Connect(faulty->out_, sink->in()).ok());
    feed->Push(Token(1), Timestamp(0));
    feed->Push(Token(2), Timestamp(0));
    feed->Close();
  }
};

TEST(FailureTest, InitializeErrorSurfacesFromDirectorInitialize) {
  Rig rig(FaultyActor::FailAt::kInitialize);
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  EXPECT_EQ(d.Initialize(&rig.wf, &rig.clock, &rig.cm).code(),
            StatusCode::kInternal);
}

TEST(FailureTest, FireErrorSurfacesFromScwfRun) {
  Rig rig(FaultyActor::FailAt::kFire);
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  EXPECT_EQ(d.Run(Timestamp::Max()).code(), StatusCode::kInternal);
}

TEST(FailureTest, FireErrorSurfacesFromDdfRun) {
  Rig rig(FaultyActor::FailAt::kFire);
  DDFDirector d;
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, nullptr).ok());
  EXPECT_EQ(d.Run(Timestamp::Max()).code(), StatusCode::kInternal);
}

TEST(FailureTest, PrefireErrorSurfaces) {
  Rig rig(FaultyActor::FailAt::kPrefire);
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  EXPECT_EQ(d.Run(Timestamp::Max()).code(), StatusCode::kInternal);
}

TEST(FailureTest, PostfireErrorSurfaces) {
  Rig rig(FaultyActor::FailAt::kPostfire);
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  EXPECT_EQ(d.Run(Timestamp::Max()).code(), StatusCode::kInternal);
}

TEST(FailureTest, WrapupErrorSurfaces) {
  Rig rig(FaultyActor::FailAt::kWrapup);
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(d.Wrapup().code(), StatusCode::kInternal);
}

TEST(FailureTest, PartialWorkBeforeFailureIsVisible) {
  Rig rig(FaultyActor::FailAt::kFire, /*after=*/1);
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
  EXPECT_FALSE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(rig.faulty->fired_, 1);  // first tuple made it through
}

TEST(LoggingTest, SinkCapturesAtThreshold) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  SetLogSink([&](LogLevel level, const std::string& msg) {
    captured.emplace_back(level, msg);
  });
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  CWF_LOG(kDebug) << "hidden";
  CWF_LOG(kInfo) << "visible " << 42;
  CWF_LOG(kError) << "loud";
  SetLogLevel(prev);
  SetLogSink(nullptr);
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].second, "visible 42");
  EXPECT_EQ(captured[1].first, LogLevel::kError);
}

TEST(CostModelTest, PerActorOverridesAndFiringCost) {
  CostModel cm;
  cm.SetDefault({100, 10, 5});
  cm.SetActorCost("special", {1000, 0, 0});
  EXPECT_EQ(cm.FiringCost("anybody", 2, 3), 100 + 20 + 15);
  EXPECT_EQ(cm.FiringCost("special", 2, 3), 1000);
  EXPECT_EQ(cm.ParamsFor("special").base, 1000);
  EXPECT_EQ(cm.ParamsFor("other").base, 100);
}

TEST(ClockDeathTest, RealClockCannotAdvance) {
  RealClock clock;
  EXPECT_DEATH(clock.AdvanceTo(Timestamp::Seconds(1)), "cannot advance");
}

TEST(ClockDeathTest, VirtualClockCannotGoBackward) {
  VirtualClock clock(Timestamp::Seconds(5));
  EXPECT_DEATH(clock.AdvanceTo(Timestamp::Seconds(4)), "moved backward");
}

TEST(ClockTest, RealClockMonotone) {
  RealClock clock;
  const Timestamp a = clock.Now();
  const Timestamp b = clock.Now();
  EXPECT_LE(a, b);
  EXPECT_FALSE(clock.is_virtual());
}

}  // namespace
}  // namespace cwf

#include <gtest/gtest.h>

#include "actors/library.h"
#include "actors/stream_ops.h"
#include "directors/ddf_director.h"
#include "directors/scwf_director.h"
#include "directors/scwf_director.h"
#include "stafilos/fifo_scheduler.h"
#include "stream/stream_source.h"
#include "test_util.h"

namespace cwf {
namespace {

using testutil::Rec;

Token Order(int64_t id, double amount) {
  return Rec({{"id", Value(id)}, {"amount", Value(amount)}});
}

Token Shipment(int64_t id, const char* depot) {
  return Rec({{"id", Value(id)}, {"depot", Value(depot)}});
}

struct JoinRig {
  Workflow wf{"join"};
  std::shared_ptr<PushChannel> orders = std::make_shared<PushChannel>();
  std::shared_ptr<PushChannel> shipments = std::make_shared<PushChannel>();
  KeyedJoinActor* join;
  CollectorSink* sink;
  VirtualClock clock;
  CostModel cm;

  explicit JoinRig(size_t buffer = 16) {
    auto* so = wf.AddActor<StreamSourceActor>("orders", orders);
    auto* ss = wf.AddActor<StreamSourceActor>("shipments", shipments);
    join = wf.AddActor<KeyedJoinActor>("join",
                                       std::vector<std::string>{"id"}, buffer);
    sink = wf.AddActor<CollectorSink>("sink");
    CWF_CHECK(wf.Connect(so->out(), join->left()).ok());
    CWF_CHECK(wf.Connect(ss->out(), join->right()).ok());
    CWF_CHECK(wf.Connect(join->out(), sink->in()).ok());
  }

  Status Run() {
    orders->Close();
    shipments->Close();
    SCWFDirector d(std::make_unique<FIFOScheduler>());
    CWF_RETURN_NOT_OK(d.Initialize(&wf, &clock, &cm));
    return d.Run(Timestamp::Max());
  }
};

TEST(KeyedJoinTest, MatchesAcrossSides) {
  JoinRig rig;
  rig.orders->Push(Order(1, 10.0), Timestamp::Seconds(1));
  rig.shipments->Push(Shipment(1, "east"), Timestamp::Seconds(2));
  rig.orders->Push(Order(2, 20.0), Timestamp::Seconds(3));
  rig.shipments->Push(Shipment(3, "west"), Timestamp::Seconds(4));
  ASSERT_TRUE(rig.Run().ok());
  auto got = rig.sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].token.Field("id").AsInt(), 1);
  EXPECT_DOUBLE_EQ(got[0].token.Field("amount").AsDouble(), 10.0);
  EXPECT_EQ(got[0].token.Field("depot").AsString(), "east");
  EXPECT_EQ(rig.join->matches(), 1u);
}

TEST(KeyedJoinTest, OrderOfArrivalIrrelevant) {
  JoinRig rig;
  rig.shipments->Push(Shipment(7, "north"), Timestamp::Seconds(1));
  rig.orders->Push(Order(7, 70.0), Timestamp::Seconds(2));
  ASSERT_TRUE(rig.Run().ok());
  EXPECT_EQ(rig.sink->count(), 1u);
}

TEST(KeyedJoinTest, ManyToManyEmitsCrossProduct) {
  JoinRig rig;
  rig.orders->Push(Order(5, 1.0), Timestamp::Seconds(1));
  rig.orders->Push(Order(5, 2.0), Timestamp::Seconds(2));
  rig.shipments->Push(Shipment(5, "a"), Timestamp::Seconds(3));
  rig.shipments->Push(Shipment(5, "b"), Timestamp::Seconds(4));
  ASSERT_TRUE(rig.Run().ok());
  EXPECT_EQ(rig.sink->count(), 4u);  // 2x2
}

TEST(KeyedJoinTest, BufferBoundEvictsOldest) {
  JoinRig rig(/*buffer=*/1);
  rig.orders->Push(Order(9, 1.0), Timestamp::Seconds(1));
  rig.orders->Push(Order(9, 2.0), Timestamp::Seconds(2));  // evicts 1.0
  rig.shipments->Push(Shipment(9, "x"), Timestamp::Seconds(3));
  ASSERT_TRUE(rig.Run().ok());
  auto got = rig.sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_DOUBLE_EQ(got[0].token.Field("amount").AsDouble(), 2.0);
}

TEST(KeyedJoinTest, LeftFieldsWinNameClashes) {
  JoinRig rig;
  rig.orders->Push(Rec({{"id", 1}, {"v", 100}}), Timestamp::Seconds(1));
  rig.shipments->Push(Rec({{"id", 1}, {"v", 200}}), Timestamp::Seconds(2));
  ASSERT_TRUE(rig.Run().ok());
  auto got = rig.sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].token.Field("v").AsInt(), 100);
}

TEST(KeyedJoinTest, NonRecordTokenFailsTheRun) {
  JoinRig rig;
  rig.orders->Push(Token(5), Timestamp::Seconds(1));
  EXPECT_FALSE(rig.Run().ok());
}

TEST(UnionTest, MergesChannelsPreservingPerChannelOrder) {
  Workflow wf("u");
  auto f1 = std::make_shared<PushChannel>();
  auto f2 = std::make_shared<PushChannel>();
  auto* s1 = wf.AddActor<StreamSourceActor>("s1", f1);
  auto* s2 = wf.AddActor<StreamSourceActor>("s2", f2);
  auto* u = wf.AddActor<UnionActor>("union");
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(s1->out(), u->in()).ok());
  ASSERT_TRUE(wf.Connect(s2->out(), u->in()).ok());
  ASSERT_TRUE(wf.Connect(u->out(), sink->in()).ok());
  for (int i = 0; i < 3; ++i) {
    f1->Push(Token(i), Timestamp::Seconds(i));
    f2->Push(Token(100 + i), Timestamp::Seconds(i));
  }
  f1->Close();
  f2->Close();
  VirtualClock clock;
  DDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  auto got = sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 6u);
  std::vector<int64_t> low, high;
  for (const auto& r : got) {
    (r.token.AsInt() < 100 ? low : high).push_back(r.token.AsInt());
  }
  EXPECT_EQ(low, (std::vector<int64_t>{0, 1, 2}));
  EXPECT_EQ(high, (std::vector<int64_t>{100, 101, 102}));
}

TEST(ThrottleTest, CapsPerSecondAndCountsDrops) {
  Workflow wf("t");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* throttle = wf.AddActor<ThrottleActor>("throttle", 2);
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(src->out(), throttle->in()).ok());
  ASSERT_TRUE(wf.Connect(throttle->out(), sink->in()).ok());
  // 5 events in second 0, 1 event in second 3.
  for (int i = 0; i < 5; ++i) {
    feed->Push(Token(i), Timestamp::Millis(i));
  }
  feed->Push(Token(99), Timestamp::Seconds(3));
  feed->Close();
  VirtualClock clock;
  CostModel cm;  // default costs keep all 5 within virtual second 0
  cm.SetDefault({10, 1, 1});
  cm.scheduled_dispatch_overhead = 1;
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&wf, &clock, &cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(sink->count(), 3u);  // 2 from the burst + the later one
  EXPECT_EQ(throttle->dropped(), 3u);
}

TEST(CounterSourceTest, EmitsExactlyCountTokens) {
  Workflow wf("c");
  auto* src = wf.AddActor<CounterSource>("src", 7, 3);
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(src->out(), sink->in()).ok());
  VirtualClock clock;
  DDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  auto got = sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 7u);
  EXPECT_EQ(got[6].token.AsInt(), 6);
}

struct StoreRig {
  db::Database database;
  db::Table* table;

  StoreRig() {
    table = database
                .CreateTable("kv", db::Schema({{"k", db::ColumnType::kInt64},
                                               {"label", db::ColumnType::kString}}))
                .value();
    CWF_CHECK(table->CreateIndex("pk", {"k"}, true).ok());
  }
};

TEST(DbUpsertActorTest, WritesAndDedupsByKey) {
  StoreRig store;
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* up = wf.AddActor<DbUpsertActor>("up", &store.database, "kv",
                                        std::vector<std::string>{"k"});
  ASSERT_TRUE(wf.Connect(src->out(), up->in()).ok());
  feed->Push(Rec({{"k", 1}, {"label", "a"}}), Timestamp::Seconds(1));
  feed->Push(Rec({{"k", 1}, {"label", "b"}}), Timestamp::Seconds(2));
  feed->Push(Rec({{"k", 2}, {"label", "c"}}), Timestamp::Seconds(3));
  feed->Close();
  VirtualClock clock;
  DDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(up->rows_written(), 3u);
  EXPECT_EQ(store.table->RowCount(), 2u);
  auto row = store.table->SelectOne(db::Eq("k", Value(1))).value();
  EXPECT_EQ((*row)[1].AsString(), "b");  // refreshed
}

TEST(DbUpsertActorTest, MissingFieldsStoreNull) {
  StoreRig store;
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* up = wf.AddActor<DbUpsertActor>("up", &store.database, "kv",
                                        std::vector<std::string>{"k"});
  ASSERT_TRUE(wf.Connect(src->out(), up->in()).ok());
  feed->Push(Rec({{"k", 5}}), Timestamp::Seconds(1));
  feed->Close();
  VirtualClock clock;
  DDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  auto row = store.table->SelectOne(db::Eq("k", Value(5))).value();
  ASSERT_TRUE(row.has_value());
  EXPECT_TRUE((*row)[1].is_null());
}

TEST(DbLookupActorTest, EnrichesMatchedPassesUnmatched) {
  StoreRig store;
  ASSERT_TRUE(store.table->Insert({Value(1), Value("gold")}).ok());
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* lk = wf.AddActor<DbLookupActor>("lk", &store.database, "kv",
                                        std::vector<std::string>{"k"});
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(src->out(), lk->in()).ok());
  ASSERT_TRUE(wf.Connect(lk->out(), sink->in()).ok());
  feed->Push(Rec({{"k", 1}, {"x", 10}}), Timestamp::Seconds(1));
  feed->Push(Rec({{"k", 2}, {"x", 20}}), Timestamp::Seconds(2));
  feed->Close();
  VirtualClock clock;
  DDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  auto got = sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].token.Field("label").AsString(), "gold");
  EXPECT_EQ(got[0].token.Field("x").AsInt(), 10);
  EXPECT_FALSE(got[1].token.AsRecord()->Has("label"));
  EXPECT_EQ(lk->hits(), 1u);
}

TEST(DbActorsTest, UnknownTableFailsInitialize) {
  db::Database database;
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* up = wf.AddActor<DbUpsertActor>("up", &database, "nope",
                                        std::vector<std::string>{"k"});
  ASSERT_TRUE(wf.Connect(src->out(), up->in()).ok());
  VirtualClock clock;
  DDFDirector d;
  EXPECT_EQ(d.Initialize(&wf, &clock, nullptr).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace cwf

namespace cwf {
namespace {

TEST(DelayActorTest, HoldsEventsForTheConfiguredLatency) {
  Workflow wf("link");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* link = wf.AddActor<DelayActor>("wan_link", Seconds(2));
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(src->out(), link->in()).ok());
  ASSERT_TRUE(wf.Connect(link->out(), sink->in()).ok());
  feed->Push(Token(1), Timestamp::Seconds(1));
  feed->Push(Token(2), Timestamp::Seconds(1.5));
  feed->Close();
  VirtualClock clock;
  CostModel cm;
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&wf, &clock, &cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Seconds(60)).ok());
  auto got = sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 2u);
  // Each tuple waited at least the link latency after its arrival.
  for (const auto& r : got) {
    EXPECT_GE(r.completed_at - r.event_timestamp, Seconds(2));
    EXPECT_LT(r.completed_at - r.event_timestamp, Seconds(3));
  }
  EXPECT_EQ(link->in_flight(), 0u);
}

TEST(DelayActorTest, ReleasesWithoutFurtherInputUnderDdf) {
  Workflow wf("link");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* link = wf.AddActor<DelayActor>("link", Seconds(5));
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(src->out(), link->in()).ok());
  ASSERT_TRUE(wf.Connect(link->out(), sink->in()).ok());
  feed->Push(Token(9), Timestamp::Seconds(1));
  feed->Close();  // nothing else will ever arrive
  VirtualClock clock;
  DDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Seconds(30)).ok());
  // The deadline mechanism must have woken the link to flush its buffer.
  EXPECT_EQ(sink->count(), 1u);
  EXPECT_GE(clock.Now(), Timestamp::Seconds(6));
}

TEST(DelayActorTest, ZeroDelayIsPassThrough) {
  Workflow wf("link");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* link = wf.AddActor<DelayActor>("link", 0);
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(src->out(), link->in()).ok());
  ASSERT_TRUE(wf.Connect(link->out(), sink->in()).ok());
  for (int i = 0; i < 5; ++i) {
    feed->Push(Token(i), Timestamp(0));
  }
  feed->Close();
  VirtualClock clock;
  DDFDirector d;
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  EXPECT_EQ(sink->count(), 5u);
}

}  // namespace
}  // namespace cwf

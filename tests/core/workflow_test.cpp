#include <gtest/gtest.h>

#include "actors/library.h"
#include "core/composite_actor.h"
#include "core/workflow.h"
#include "directors/ddf_director.h"

namespace cwf {
namespace {

Token Identity(const Token& t) { return t; }

std::unique_ptr<MapActor> Node(const std::string& name) {
  return std::make_unique<MapActor>(name, Identity);
}

TEST(WorkflowTest, AddAndFindActors) {
  Workflow wf("w");
  Actor* a = wf.AdoptActor(Node("A"));
  EXPECT_EQ(wf.FindActor("A"), a);
  EXPECT_EQ(wf.FindActor("B"), nullptr);
  EXPECT_EQ(wf.actors().size(), 1u);
}

TEST(WorkflowDeathTest, DuplicateNameAborts) {
  Workflow wf("w");
  wf.AdoptActor(Node("A"));
  EXPECT_DEATH(wf.AdoptActor(Node("A")), "duplicate actor name");
}

TEST(WorkflowTest, ConnectByName) {
  Workflow wf("w");
  wf.AdoptActor(Node("A"));
  wf.AdoptActor(Node("B"));
  EXPECT_TRUE(wf.Connect("A", "out", "B", "in").ok());
  ASSERT_EQ(wf.channels().size(), 1u);
  EXPECT_EQ(wf.channels()[0].from->FullName(), "A.out");
  EXPECT_EQ(wf.channels()[0].to->FullName(), "B.in");
  EXPECT_EQ(wf.channels()[0].to_channel, 0u);
}

TEST(WorkflowTest, ConnectErrors) {
  Workflow wf("w");
  wf.AdoptActor(Node("A"));
  EXPECT_EQ(wf.Connect("X", "out", "A", "in").code(), StatusCode::kNotFound);
  EXPECT_EQ(wf.Connect("A", "out", "X", "in").code(), StatusCode::kNotFound);
  EXPECT_EQ(wf.Connect("A", "bad", "A", "in").code(), StatusCode::kNotFound);
  EXPECT_EQ(wf.Connect("A", "out", "A", "bad").code(), StatusCode::kNotFound);
  EXPECT_EQ(wf.Connect(nullptr, nullptr).code(), StatusCode::kInvalidArgument);
}

TEST(WorkflowTest, FanInAssignsChannelSlots) {
  Workflow wf("w");
  wf.AdoptActor(Node("A"));
  wf.AdoptActor(Node("B"));
  wf.AdoptActor(Node("C"));
  ASSERT_TRUE(wf.Connect("A", "out", "C", "in").ok());
  ASSERT_TRUE(wf.Connect("B", "out", "C", "in").ok());
  EXPECT_EQ(wf.channels()[0].to_channel, 0u);
  EXPECT_EQ(wf.channels()[1].to_channel, 1u);
}

TEST(WorkflowTest, SourcesAndSinks) {
  Workflow wf("w");
  wf.AdoptActor(Node("A"));
  wf.AdoptActor(Node("B"));
  wf.AdoptActor(Node("C"));
  ASSERT_TRUE(wf.Connect("A", "out", "B", "in").ok());
  ASSERT_TRUE(wf.Connect("B", "out", "C", "in").ok());
  auto sources = wf.Sources();
  auto sinks = wf.Sinks();
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(sources[0]->name(), "A");
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(sinks[0]->name(), "C");
}

TEST(WorkflowTest, UpstreamDownstreamDeduplicated) {
  Workflow wf("w");
  auto* a = wf.AdoptActor(Node("A"));
  auto* b = wf.AdoptActor(std::make_unique<MapActor>("B", Identity));
  // Two parallel channels A->B.
  auto* bm = static_cast<MapActor*>(b);
  (void)bm;
  ASSERT_TRUE(wf.Connect("A", "out", "B", "in").ok());
  ASSERT_TRUE(wf.Connect("A", "out", "B", "in").ok());
  EXPECT_EQ(wf.DownstreamOf(a).size(), 1u);
  EXPECT_EQ(wf.UpstreamOf(b).size(), 1u);
}

TEST(WorkflowTest, CycleDetection) {
  Workflow wf("w");
  wf.AdoptActor(Node("A"));
  wf.AdoptActor(Node("B"));
  wf.AdoptActor(Node("C"));
  ASSERT_TRUE(wf.Connect("A", "out", "B", "in").ok());
  ASSERT_TRUE(wf.Connect("B", "out", "C", "in").ok());
  EXPECT_FALSE(wf.HasCycle());
  ASSERT_TRUE(wf.Connect("C", "out", "A", "in").ok());
  EXPECT_TRUE(wf.HasCycle());
}

TEST(WorkflowTest, ValidatePassesOnGoodGraph) {
  Workflow wf("w");
  wf.AdoptActor(Node("A"));
  wf.AdoptActor(Node("B"));
  ASSERT_TRUE(wf.Connect("A", "out", "B", "in").ok());
  EXPECT_TRUE(wf.Validate().ok());
}

TEST(WorkflowTest, ValidateRejectsSelfLoop) {
  Workflow wf("w");
  auto* a = static_cast<MapActor*>(wf.AdoptActor(Node("A")));
  ASSERT_TRUE(wf.Connect(a->out(), a->in()).ok());
  EXPECT_EQ(wf.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(WorkflowTest, ValidateRejectsBadWindowSpec) {
  Workflow wf("w");
  auto* a = wf.AddActor<MapActor>("A", Identity);
  auto* b = wf.AddActor<MapActor>("B", Identity,
                                  WindowSpec::Tuples(0, 1));  // invalid size
  ASSERT_TRUE(wf.Connect(a->out(), b->in()).ok());
  EXPECT_FALSE(wf.Validate().ok());
}

TEST(WorkflowTest, ConnectRejectsForeignActorPorts) {
  Workflow wf1("w1");
  Workflow wf2("w2");
  auto* a = wf1.AddActor<MapActor>("A", Identity);
  auto* b = wf2.AddActor<MapActor>("B", Identity);
  EXPECT_EQ(wf1.Connect(a->out(), b->in()).code(),
            StatusCode::kInvalidArgument);
}

TEST(WorkflowTest, ExplicitSlotConnectRecordsTheRequestedSlot) {
  Workflow wf("w");
  auto* a = wf.AddActor<MapActor>("A", Identity);
  auto* b = wf.AddActor<MapActor>("B", Identity);
  auto* c = wf.AddActor<MapActor>("C", Identity);
  // Out-of-order wiring is allowed: slots describe intent, not sequence.
  ASSERT_TRUE(wf.Connect(a->out(), c->in(), 1).ok());
  ASSERT_TRUE(wf.Connect(b->out(), c->in(), 0).ok());
  EXPECT_EQ(wf.channels()[0].to_channel, 1u);
  EXPECT_EQ(wf.channels()[1].to_channel, 0u);
  EXPECT_TRUE(wf.Validate().ok());
  EXPECT_EQ(wf.Connect(nullptr, c->in(), 0).code(),
            StatusCode::kInvalidArgument);
}

TEST(WorkflowTest, ValidateRejectsDuplicateChannelSlot) {
  Workflow wf("w");
  auto* a = wf.AddActor<MapActor>("A", Identity);
  auto* b = wf.AddActor<MapActor>("B", Identity);
  auto* c = wf.AddActor<MapActor>("C", Identity);
  // Both producers claim slot 0 of C.in: construction succeeds (Ptolemy
  // style — build freely, validate once), Validate rejects.
  ASSERT_TRUE(wf.Connect(a->out(), c->in(), 0).ok());
  ASSERT_TRUE(wf.Connect(b->out(), c->in(), 0).ok());
  const Status status = wf.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("CWF1004"), std::string::npos);
}

TEST(WorkflowTest, HasCycleWithFanInAndFanOut) {
  Workflow wf("diamond");
  wf.AdoptActor(Node("A"));
  wf.AdoptActor(Node("B"));
  wf.AdoptActor(Node("C"));
  wf.AdoptActor(Node("D"));
  ASSERT_TRUE(wf.Connect("A", "out", "B", "in").ok());
  ASSERT_TRUE(wf.Connect("A", "out", "C", "in").ok());
  ASSERT_TRUE(wf.Connect("B", "out", "D", "in").ok());
  ASSERT_TRUE(wf.Connect("C", "out", "D", "in").ok());
  // Reconvergent fan-in is NOT a cycle.
  EXPECT_FALSE(wf.HasCycle());
  ASSERT_TRUE(wf.Connect("D", "out", "A", "in").ok());
  EXPECT_TRUE(wf.HasCycle());
}

TEST(WorkflowTest, CycleThroughCompositeBoundary) {
  // comp -> post -> comp: the composite participates in the outer cycle as
  // one node regardless of its inner structure.
  Workflow wf("outer");
  auto* comp =
      wf.AddActor<CompositeActor>("comp", std::make_unique<DDFDirector>());
  auto* inner_map = comp->inner()->AddActor<MapActor>("inner_map", Identity);
  InputPort* comp_in = comp->ExposeInput("in", inner_map->in());
  OutputPort* comp_out = comp->ExposeOutput("out", inner_map->out());
  auto* post = wf.AddActor<MapActor>("post", Identity);
  ASSERT_TRUE(wf.Connect(comp_out, post->in()).ok());
  EXPECT_FALSE(wf.HasCycle());
  ASSERT_TRUE(wf.Connect(post->out(), comp_in).ok());
  EXPECT_TRUE(wf.HasCycle());
}

}  // namespace
}  // namespace cwf

namespace cwf {
namespace {

TEST(WorkflowDotTest, RendersNodesEdgesAndWindowLabels) {
  Workflow wf("dotted");
  auto* a = wf.AddActor<MapActor>("alpha", Identity);
  auto* b = wf.AddActor<WindowFnActor>(
      "beta", WindowSpec::Tuples(4, 1).GroupBy({"car"}),
      [](const Window&, std::vector<Token>*) { return Status::OK(); });
  ASSERT_TRUE(wf.Connect(a->out(), b->in()).ok());
  const std::string dot = wf.ToDot();
  EXPECT_NE(dot.find("digraph \"dotted\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"alpha\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"beta\""), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  // The windowed channel is labelled with its semantics.
  EXPECT_NE(dot.find("size=4"), std::string::npos);
  // Sources are drawn distinctly.
  EXPECT_NE(dot.find("invhouse"), std::string::npos);
}

TEST(WorkflowDotTest, CompositeRendersAsCluster) {
  Workflow wf("outer");
  auto* comp =
      wf.AddActor<CompositeActor>("stage", std::make_unique<DDFDirector>());
  auto* inner_map = comp->inner()->AddActor<MapActor>("inner_map", Identity);
  auto* inner_sink = comp->inner()->AddActor<MapActor>("inner_sink", Identity);
  ASSERT_TRUE(comp->inner()->Connect(inner_map->out(), inner_sink->in()).ok());
  comp->ExposeInput("in", inner_map->in());
  const std::string dot = wf.ToDot();
  EXPECT_NE(dot.find("subgraph cluster_"), std::string::npos);
  EXPECT_NE(dot.find("label=\"stage\""), std::string::npos);
  // Inner actors and channels render inside the cluster.
  EXPECT_NE(dot.find("label=\"inner_map\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"inner_sink\""), std::string::npos);
}

TEST(WorkflowDotTest, DotOptionsFillNodesAndTintClusters) {
  Workflow wf("outer");
  auto* plain = wf.AddActor<MapActor>("plain", Identity);
  auto* comp =
      wf.AddActor<CompositeActor>("stage", std::make_unique<DDFDirector>());
  auto* inner_map = comp->inner()->AddActor<MapActor>("inner_map", Identity);
  comp->ExposeInput("in", inner_map->in());
  Workflow::DotOptions options;
  options.node_fill[plain] = "red";
  options.node_fill[comp] = "#ffe0b0";
  const std::string dot = wf.ToDot(options);
  EXPECT_NE(dot.find("fillcolor=\"red\""), std::string::npos);
  EXPECT_NE(dot.find("bgcolor=\"#ffe0b0\""), std::string::npos);
  // The default rendering stays unstyled.
  const std::string bare = wf.ToDot();
  EXPECT_EQ(bare.find("fillcolor"), std::string::npos);
  EXPECT_EQ(bare.find("bgcolor"), std::string::npos);
}

}  // namespace
}  // namespace cwf

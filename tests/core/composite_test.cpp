#include <gtest/gtest.h>

#include "actors/library.h"
#include "core/composite_actor.h"
#include "directors/ddf_director.h"
#include "directors/scwf_director.h"
#include "stafilos/fifo_scheduler.h"
#include "stream/stream_source.h"
#include "test_util.h"

namespace cwf {
namespace {

// Build: source -> composite[ double -> add_ten ] -> sink, run under SCWF.
struct Rig {
  Workflow wf{"outer"};
  std::shared_ptr<PushChannel> feed = std::make_shared<PushChannel>();
  StreamSourceActor* source = nullptr;
  CompositeActor* comp = nullptr;
  CollectorSink* sink = nullptr;
  VirtualClock clock;
  CostModel cost_model;

  Rig() {
    source = wf.AddActor<StreamSourceActor>("src", feed);
    comp = wf.AddActor<CompositeActor>("comp", std::make_unique<DDFDirector>());
    auto* dbl = comp->inner()->AddActor<MapActor>(
        "double", [](const Token& t) { return Token(t.AsInt() * 2); });
    auto* add = comp->inner()->AddActor<MapActor>(
        "add_ten", [](const Token& t) { return Token(t.AsInt() + 10); });
    CWF_CHECK(comp->inner()->Connect(dbl->out(), add->in()).ok());
    comp->ExposeInput("in", dbl->in());
    comp->ExposeOutput("out", add->out());
    sink = wf.AddActor<CollectorSink>("sink");
    CWF_CHECK(wf.Connect(source->out(), comp->GetInputPort("in")).ok());
    CWF_CHECK(wf.Connect(comp->GetOutputPort("out"), sink->in()).ok());
  }
};

TEST(CompositeTest, InnerPipelineTransformsTokens) {
  Rig rig;
  rig.feed->Push(Token(1), Timestamp::Seconds(1));
  rig.feed->Push(Token(2), Timestamp::Seconds(2));
  rig.feed->Close();
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cost_model).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  auto got = rig.sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].token.AsInt(), 12);  // 1*2+10
  EXPECT_EQ(got[1].token.AsInt(), 14);
}

TEST(CompositeTest, OutputsStampedAsCompositeFiring) {
  Rig rig;
  rig.feed->Push(Token(5), Timestamp::Seconds(1));
  rig.feed->Close();
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&rig.wf, &rig.clock, &rig.cost_model).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  auto got = rig.sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 1u);
  // Response-time timestamp survives the boundary: the outer event's arrival.
  EXPECT_EQ(got[0].event_timestamp, Timestamp::Seconds(1));
  // Wave: a child of the external event's root wave.
  EXPECT_EQ(got[0].wave.depth(), 1u);
}

TEST(CompositeTest, PrefireTrueOnAnyReadyInput) {
  CompositeActor comp("c", std::make_unique<DDFDirector>());
  auto* a = comp.inner()->AddActor<MapActor>(
      "a", [](const Token& t) { return t; });
  auto* b = comp.inner()->AddActor<MapActor>(
      "b", [](const Token& t) { return t; });
  InputPort* in1 = comp.ExposeInput("in1", a->in());
  comp.ExposeInput("in2", b->in());
  ExecutionContext ctx;
  VirtualClock clock;
  ctx.clock = &clock;
  ASSERT_TRUE(comp.Initialize(&ctx).ok());
  in1->SetReceiver(in1->ChannelCount(),
                   std::make_unique<QueueReceiver>(in1));
  // No input anywhere: not ready.
  EXPECT_FALSE(comp.Prefire().value());
  ASSERT_TRUE(in1->receiver(in1->ChannelCount() - 1)
                  ->Put(testutil::Ev(Token(1), 1))
                  .ok());
  // One of two ports ready is enough for a composite.
  EXPECT_TRUE(comp.Prefire().value());
}

TEST(CompositeTest, ExposeForeignPortFailsAtInitialize) {
  Workflow other("other");
  auto* foreign = other.AddActor<MapActor>(
      "m", [](const Token& t) { return t; });
  CompositeActor comp("c", std::make_unique<DDFDirector>());
  comp.ExposeInput("in", foreign->in());
  ExecutionContext ctx;
  VirtualClock clock;
  ctx.clock = &clock;
  EXPECT_FALSE(comp.Initialize(&ctx).ok());
}

TEST(CompositeTest, InnerWindowSemanticsApply) {
  // Inner actor aggregates windows of 3; outer relays single events.
  Workflow wf("outer");
  auto feed = std::make_shared<PushChannel>();
  auto* source = wf.AddActor<StreamSourceActor>("src", feed);
  auto* comp =
      wf.AddActor<CompositeActor>("comp", std::make_unique<DDFDirector>());
  auto* sum = comp->inner()->AddActor<WindowFnActor>(
      "sum", WindowSpec::Tuples(3, 3),
      [](const Window& w, std::vector<Token>* out) {
        int64_t total = 0;
        for (const auto& e : w.events) {
          total += e.token.AsInt();
        }
        out->push_back(Token(total));
        return Status::OK();
      });
  comp->ExposeInput("in", sum->in());
  comp->ExposeOutput("out", sum->out());
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(source->out(), comp->GetInputPort("in")).ok());
  ASSERT_TRUE(wf.Connect(comp->GetOutputPort("out"), sink->in()).ok());
  for (int i = 1; i <= 7; ++i) {
    feed->Push(Token(i), Timestamp::Seconds(i));
  }
  feed->Close();
  VirtualClock clock;
  CostModel cm;
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&wf, &clock, &cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  auto got = sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].token.AsInt(), 6);   // 1+2+3
  EXPECT_EQ(got[1].token.AsInt(), 15);  // 4+5+6
}

TEST(CompositeTest, NextDeadlineSurfacesInnerTimeWindows) {
  Workflow wf("outer");
  auto feed = std::make_shared<PushChannel>();
  auto* source = wf.AddActor<StreamSourceActor>("src", feed);
  auto* comp =
      wf.AddActor<CompositeActor>("comp", std::make_unique<DDFDirector>());
  auto* minute = comp->inner()->AddActor<WindowFnActor>(
      "per_minute", WindowSpec::Time(Seconds(60), Seconds(60)),
      [](const Window& w, std::vector<Token>* out) {
        out->push_back(Token(static_cast<int64_t>(w.size())));
        return Status::OK();
      });
  comp->ExposeInput("in", minute->in());
  comp->ExposeOutput("out", minute->out());
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(source->out(), comp->GetInputPort("in")).ok());
  ASSERT_TRUE(wf.Connect(comp->GetOutputPort("out"), sink->in()).ok());
  feed->Push(Token(1), Timestamp::Seconds(10));
  feed->Push(Token(2), Timestamp::Seconds(20));
  feed->Close();
  VirtualClock clock;
  CostModel cm;
  SCWFDirector d(std::make_unique<FIFOScheduler>());
  ASSERT_TRUE(d.Initialize(&wf, &clock, &cm).ok());
  // Run past the inner window's deadline: the composite must be woken to
  // close it even though no further events arrive.
  ASSERT_TRUE(d.Run(Timestamp::Seconds(120)).ok());
  auto got = sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].token.AsInt(), 2);  // both events in the minute window
}

}  // namespace
}  // namespace cwf

namespace cwf {
namespace {

TEST(WorkflowDotTest, CompositeRendersAsCluster) {
  Rig rig;
  const std::string dot = rig.wf.ToDot();
  EXPECT_NE(dot.find("subgraph cluster_"), std::string::npos);
  EXPECT_NE(dot.find("label=\"comp\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"double\""), std::string::npos);  // inner actor
}

}  // namespace
}  // namespace cwf

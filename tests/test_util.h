// Shared helpers for the test suite.

#ifndef CONFLUENCE_TESTS_TEST_UTIL_H_
#define CONFLUENCE_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/event.h"
#include "core/record.h"
#include "core/token.h"

namespace cwf::testutil {

/// \brief Record token {k1=v1, k2=v2, ...} from pairs.
inline Token Rec(std::initializer_list<std::pair<std::string, Value>> fields) {
  auto rec = std::make_shared<Record>();
  for (const auto& [name, value] : fields) {
    rec->Set(name, value);
  }
  return Token(RecordPtr(std::move(rec)));
}

/// \brief A CWEvent with a fresh root wave.
inline CWEvent Ev(Token token, int64_t ts_us, uint64_t root = 0,
                  uint64_t seq = 0) {
  static uint64_t auto_root = 1000000;
  CWEvent e;
  e.token = std::move(token);
  e.timestamp = Timestamp(ts_us);
  e.wave = WaveTag::Root(root == 0 ? ++auto_root : root);
  e.last_in_wave = true;
  e.seq = seq;
  return e;
}

/// \brief Extract int payloads from a window.
inline std::vector<int64_t> Ints(const Window& w) {
  std::vector<int64_t> out;
  for (const CWEvent& e : w.events) {
    out.push_back(e.token.AsInt());
  }
  return out;
}

}  // namespace cwf::testutil

#endif  // CONFLUENCE_TESTS_TEST_UTIL_H_

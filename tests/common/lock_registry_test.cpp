// Tests for the debug lock-order deadlock detector.
//
// Built with CWF_LOCK_ORDER_CHECKS (the default); if the detector is
// compiled out these tests only verify the passthrough still locks.

#include "common/lock_registry.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace cwf {
namespace {

#if defined(CWF_LOCK_ORDER_CHECKS) && CWF_LOCK_ORDER_CHECKS

/// Captures cycle reports instead of aborting, for in-process assertions.
class LockRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LockRegistry::Instance().ResetGraphForTest();
    LockRegistry::Instance().SetReportHandlerForTest(
        [this](const std::string& report) { reports_.push_back(report); });
  }

  void TearDown() override {
    LockRegistry::Instance().SetReportHandlerForTest(nullptr);
    LockRegistry::Instance().ResetGraphForTest();
  }

  std::vector<std::string> reports_;
};

TEST_F(LockRegistryTest, ConsistentOrderIsAccepted) {
  OrderedMutex a("lock-A");
  OrderedMutex b("lock-B");
  for (int i = 0; i < 3; ++i) {
    ScopedLock la(a);
    ScopedLock lb(b);
  }
  std::thread t([&] {
    ScopedLock la(a);
    ScopedLock lb(b);
  });
  t.join();
  EXPECT_TRUE(reports_.empty()) << reports_.front();
}

// The inversion tests drive the registry's graph API directly rather than
// locking real mutexes in inverted order: under a TSan build the sanitizer's
// own deadlock detector would (correctly!) flag the intentional inversion.
// The death tests below cover the integrated OrderedMutex path — they abort
// before the cycle-closing acquisition ever reaches the underlying mutex.
TEST_F(LockRegistryTest, DetectsTwoLockInversion) {
  auto& reg = LockRegistry::Instance();
  const uint64_t a = reg.Register("lock-A");
  const uint64_t b = reg.Register("lock-B");
  reg.OnAcquire(a, false);
  reg.OnAcquire(b, false);  // records A -> B
  reg.OnRelease(b);
  reg.OnRelease(a);
  reg.OnAcquire(b, false);
  reg.OnAcquire(a, false);  // B -> A closes the cycle
  reg.OnRelease(a);
  reg.OnRelease(b);
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("potential deadlock"), std::string::npos);
  EXPECT_NE(reports_[0].find("lock-A"), std::string::npos);
  EXPECT_NE(reports_[0].find("lock-B"), std::string::npos);
  reg.Unregister(a);
  reg.Unregister(b);
}

TEST_F(LockRegistryTest, DetectsTransitiveThreeLockCycle) {
  auto& reg = LockRegistry::Instance();
  const uint64_t a = reg.Register("lock-A");
  const uint64_t b = reg.Register("lock-B");
  const uint64_t c = reg.Register("lock-C");
  reg.OnAcquire(a, false);
  reg.OnAcquire(b, false);  // A -> B
  reg.OnRelease(b);
  reg.OnRelease(a);
  reg.OnAcquire(b, false);
  reg.OnAcquire(c, false);  // B -> C
  reg.OnRelease(c);
  reg.OnRelease(b);
  reg.OnAcquire(c, false);
  reg.OnAcquire(a, false);  // C -> A: cycle through all three
  reg.OnRelease(a);
  reg.OnRelease(c);
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("lock-C"), std::string::npos);
  EXPECT_NE(reports_[0].find("recorded earlier"), std::string::npos);
  reg.Unregister(a);
  reg.Unregister(b);
  reg.Unregister(c);
}

TEST_F(LockRegistryTest, DistinctInstancePairsAreIndependent) {
  // Two channels locked in either order by different call paths is legal;
  // tracking is per instance, not per name.
  OrderedMutex a1("chan");
  OrderedMutex a2("chan");
  OrderedMutex b1("chan");
  OrderedMutex b2("chan");
  {
    ScopedLock l1(a1);
    ScopedLock l2(a2);
  }
  {
    ScopedLock l1(b2);
    ScopedLock l2(b1);
  }
  EXPECT_TRUE(reports_.empty()) << reports_.front();
}

TEST_F(LockRegistryTest, RecursiveMutexReentryIsNotACycle) {
  OrderedRecursiveMutex r("recursive");
  ScopedLock l1(r);
  ScopedLock l2(r);
  EXPECT_TRUE(reports_.empty()) << reports_.front();
  EXPECT_EQ(LockRegistry::Instance().HeldDepthForTest(), 2u);
}

TEST_F(LockRegistryTest, ReleaseUnwindsHeldStack) {
  OrderedMutex a("lock-A");
  {
    ScopedLock la(a);
    EXPECT_EQ(LockRegistry::Instance().HeldDepthForTest(), 1u);
  }
  EXPECT_EQ(LockRegistry::Instance().HeldDepthForTest(), 0u);
}

using LockRegistryDeathTest = LockRegistryTest;

TEST_F(LockRegistryDeathTest, InversionAbortsWithCycleReport) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // Without a report handler the detector must abort the process.
  EXPECT_DEATH(
      {
        LockRegistry::Instance().SetReportHandlerForTest(nullptr);
        OrderedMutex a("death-A");
        OrderedMutex b("death-B");
        {
          ScopedLock la(a);
          ScopedLock lb(b);
        }
        ScopedLock lb(b);
        ScopedLock la(a);
      },
      "potential deadlock.*death-A.*death-B|potential deadlock");
}

TEST_F(LockRegistryDeathTest, NonRecursiveReentryAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        LockRegistry::Instance().SetReportHandlerForTest(nullptr);
        OrderedMutex m("death-self");
        m.lock();
        m.lock();
      },
      "self-deadlock.*death-self");
}

#else  // !CWF_LOCK_ORDER_CHECKS

TEST(LockRegistryPassthroughTest, StillLocks) {
  OrderedMutex m;
  ScopedLock lock(m);
  SUCCEED();
}

#endif  // CWF_LOCK_ORDER_CHECKS

}  // namespace
}  // namespace cwf

// Semantics of the CWF_ASSERT / CWF_DCHECK invariant macro family.

#include "common/check.h"

#include <gtest/gtest.h>

namespace cwf {
namespace {

TEST(CheckTest, PassingAssertIsSideEffectFree) {
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return true;
  };
  CWF_ASSERT(touch());
  CWF_ASSERT_MSG(touch(), "never shown");
  EXPECT_EQ(evaluations, 2);
}

TEST(CheckDeathTest, FailingAssertAbortsWithExpressionAndMessage) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const int answer = 41;
  EXPECT_DEATH(CWF_ASSERT_MSG(answer == 42, "got " << answer),
               "answer == 42.*got 41");
  EXPECT_DEATH(CWF_ASSERT(1 + 1 == 3), "1 \\+ 1 == 3");
}

#if defined(CWF_DCHECK_IS_ON) && CWF_DCHECK_IS_ON

TEST(CheckDeathTest, DcheckFiresWhenEnabled) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(CWF_DCHECK_MSG(false, "debug-only invariant"),
               "debug-only invariant");
}

#else

TEST(CheckTest, DisabledDcheckDoesNotEvaluateItsExpression) {
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return false;
  };
  CWF_DCHECK(touch());
  CWF_DCHECK_MSG(touch(), "never shown");
  EXPECT_EQ(evaluations, 0);
}

#endif  // CWF_DCHECK_IS_ON

}  // namespace
}  // namespace cwf

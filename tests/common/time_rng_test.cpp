#include <gtest/gtest.h>
#include <cmath>

#include "common/rng.h"
#include "common/time.h"

namespace cwf {
namespace {

TEST(TimestampTest, ConstructorsAgree) {
  EXPECT_EQ(Timestamp::Micros(1500000), Timestamp::Millis(1500));
  EXPECT_EQ(Timestamp::Seconds(1.5), Timestamp::Millis(1500));
  EXPECT_EQ(Timestamp().micros(), 0);
}

TEST(TimestampTest, Ordering) {
  EXPECT_LT(Timestamp(1), Timestamp(2));
  EXPECT_LE(Timestamp(2), Timestamp(2));
  EXPECT_GT(Timestamp::Max(), Timestamp::Seconds(1e12));
}

TEST(TimestampTest, Arithmetic) {
  Timestamp t = Timestamp::Seconds(1);
  EXPECT_EQ((t + Seconds(2)).seconds(), 3.0);
  EXPECT_EQ((t - Millis(500)).micros(), 500000);
  EXPECT_EQ(Timestamp(10) - Timestamp(3), 7);
  t += Seconds(1);
  EXPECT_EQ(t.seconds(), 2.0);
}

TEST(TimestampTest, ToString) {
  EXPECT_EQ(Timestamp::Seconds(1.5).ToString(), "1.500000s");
  EXPECT_EQ(Timestamp::Max().ToString(), "+inf");
}

TEST(DurationTest, Helpers) {
  EXPECT_EQ(Micros(7), 7);
  EXPECT_EQ(Millis(2), 2000);
  EXPECT_EQ(Seconds(0.5), 500000);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  // A different seed diverges (probabilistically certain).
  Rng a2(7);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) {
      diverged = true;
      break;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(4);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.NextBool(0.3);
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    double x = rng.NextExponential(90.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 20000, 90.0, 5.0);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(6);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextGaussian(60.0, 15.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 60.0, 0.7);
  EXPECT_NEAR(std::sqrt(var), 15.0, 0.7);
}

}  // namespace
}  // namespace cwf

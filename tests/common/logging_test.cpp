// Logging configuration is engine-global state touched from every thread:
// PNCWF actor threads evaluate CWF_CLOG thresholds while tests and the
// controller flip levels. These tests pin down the concurrency contract —
// under ThreadSanitizer they are regression tests for the unguarded
// g_level read/write the thread-safety sweep uncovered (SetLogLevel wrote
// the global while EffectiveLogLevel read it under a different guard).

#include "common/logging.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace cwf {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetLogLevel(LogLevel::kWarn);
    ClearComponentLogLevels();
    SetLogSink(nullptr);
    SetLogRecordSink(nullptr);
  }
};

TEST_F(LoggingTest, GlobalLevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, ComponentOverrideBeatsGlobal) {
  SetLogLevel(LogLevel::kError);
  SetComponentLogLevel("pncwf", LogLevel::kDebug);
  EXPECT_EQ(EffectiveLogLevel("pncwf"), LogLevel::kDebug);
  EXPECT_EQ(EffectiveLogLevel("other"), LogLevel::kError);
  ClearComponentLogLevels();
  EXPECT_EQ(EffectiveLogLevel("pncwf"), LogLevel::kError);
}

// The regression: writers flip the global level while readers evaluate
// per-component thresholds and emit through a sink. TSan fails this test if
// any of that state loses its synchronization.
TEST_F(LoggingTest, ConcurrentLevelFlipsAndEmits) {
  std::atomic<int> emitted{0};
  SetLogSink([&](LogLevel, const std::string&) { ++emitted; });
  std::atomic<bool> stop{false};

  std::thread flipper([&] {
    for (int i = 0; i < 2000; ++i) {
      SetLogLevel(i % 2 == 0 ? LogLevel::kDebug : LogLevel::kError);
      SetComponentLogLevel("hot", i % 2 == 0 ? LogLevel::kError
                                             : LogLevel::kDebug);
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      // A floor of iterations so readers overlap the flips even if the
      // flipper finishes before this thread is scheduled.
      for (int i = 0; i < 500 || !stop.load(); ++i) {
        (void)GetLogLevel();
        (void)EffectiveLogLevel("hot");
        CWF_CLOG(kError, "hot") << "ping";
      }
    });
  }
  flipper.join();
  for (auto& r : readers) {
    r.join();
  }
  EXPECT_GT(emitted.load(), 0);
}

}  // namespace
}  // namespace cwf

#include "common/status.h"

#include <gtest/gtest.h>

namespace cwf {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad window size");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad window size");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad window size");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeNameTest, CoversEveryCode) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAborted), "Aborted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> err(Status::NotFound("missing"));
  EXPECT_EQ(err.value_or(7), 7);
  Result<int> ok(3);
  EXPECT_EQ(ok.value_or(7), 3);
}

TEST(ResultTest, OkStatusWithoutValueBecomesInternalError) {
  Result<int> r(Status::OK());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

Status Fails() { return Status::Internal("boom"); }
Status Succeeds() { return Status::OK(); }

Status UseReturnNotOk(bool fail) {
  CWF_RETURN_NOT_OK(fail ? Fails() : Succeeds());
  return Status::OK();
}

TEST(MacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UseReturnNotOk(false).ok());
  EXPECT_EQ(UseReturnNotOk(true).code(), StatusCode::kInternal);
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return Status::InvalidArgument("odd");
  }
  return x / 2;
}

Result<int> Quarter(int x) {
  CWF_ASSIGN_OR_RETURN(int h, Half(x));
  CWF_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(MacroTest, AssignOrReturnChains) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3, odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(CheckTest, PassingCheckDoesNotAbort) {
  CWF_CHECK(1 + 1 == 2);
  CWF_CHECK_MSG(true, "never shown");
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(CWF_CHECK(false), "CWF_CHECK failed");
  EXPECT_DEATH(CWF_CHECK_MSG(false, "context " << 42), "context 42");
}

}  // namespace
}  // namespace cwf

// Cross-module integration: the full engine driven end-to-end in ways the
// unit tests do not cover — trace round trips feeding workflows, identical
// results across directors, the two-level LRB under the multi-workflow
// runtime, and wave synchronization through a real workflow.

#include <gtest/gtest.h>

#include <cstdio>

#include "actors/library.h"
#include "directors/ddf_director.h"
#include "directors/pncwf_director.h"
#include "directors/scwf_director.h"
#include "lrb/harness.h"
#include "multi/connection_controller.h"
#include "stafilos/qbs_scheduler.h"
#include "stafilos/rr_scheduler.h"

namespace cwf {
namespace {

std::vector<int64_t> SortedInts(const CollectorSink& sink) {
  std::vector<int64_t> out;
  for (const auto& r : sink.TakeSnapshot()) {
    out.push_back(r.token.AsInt());
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct Pipeline {
  Workflow wf{"p"};
  std::shared_ptr<PushChannel> feed = std::make_shared<PushChannel>();
  CollectorSink* sink;

  Pipeline() {
    auto* src = wf.AddActor<StreamSourceActor>("src", feed);
    auto* odd = wf.AddActor<FilterActor>(
        "odd", [](const Token& t) { return t.AsInt() % 2 == 1; });
    auto* sq = wf.AddActor<MapActor>(
        "sq", [](const Token& t) { return Token(t.AsInt() * t.AsInt()); });
    sink = wf.AddActor<CollectorSink>("sink");
    CWF_CHECK(wf.Connect(src->out(), odd->in()).ok());
    CWF_CHECK(wf.Connect(odd->out(), sq->in()).ok());
    CWF_CHECK(wf.Connect(sq->out(), sink->in()).ok());
    for (int i = 0; i < 100; ++i) {
      feed->Push(Token(i), Timestamp::Seconds(i * 0.1));
    }
    feed->Close();
  }
};

TEST(IntegrationTest, SameResultsAcrossAllDirectors) {
  std::vector<std::vector<int64_t>> results;
  {
    Pipeline p;
    VirtualClock clock;
    DDFDirector d;
    ASSERT_TRUE(d.Initialize(&p.wf, &clock, nullptr).ok());
    ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
    results.push_back(SortedInts(*p.sink));
  }
  {
    Pipeline p;
    VirtualClock clock;
    CostModel cm;
    PNCWFDirector d;
    ASSERT_TRUE(d.Initialize(&p.wf, &clock, &cm).ok());
    ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
    results.push_back(SortedInts(*p.sink));
  }
  {
    Pipeline p;
    RealClock clock;
    PNCWFOptions opt;
    opt.mode = PNCWFMode::kOsThreads;
    PNCWFDirector d(opt);
    ASSERT_TRUE(d.Initialize(&p.wf, &clock, nullptr).ok());
    ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
    results.push_back(SortedInts(*p.sink));
  }
  {
    Pipeline p;
    VirtualClock clock;
    CostModel cm;
    SCWFDirector d(std::make_unique<QBSScheduler>());
    ASSERT_TRUE(d.Initialize(&p.wf, &clock, &cm).ok());
    ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
    results.push_back(SortedInts(*p.sink));
  }
  ASSERT_EQ(results[0].size(), 50u);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]) << "director variant " << i;
  }
}

TEST(IntegrationTest, TraceRoundTripFeedsIdenticalRun) {
  lrb::GeneratorOptions gopt;
  gopt.duration = Seconds(60);
  lrb::Generator gen(gopt);
  Trace original = gen.Generate();
  const std::string path = ::testing::TempDir() + "/lrb_trace.tsv";
  ASSERT_TRUE(original.SaveToFile(path).ok());
  auto loaded = Trace::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), original.size());

  auto run = [](const Trace& trace) {
    auto feed = std::make_shared<PushChannel>();
    feed->PushTrace(trace);
    feed->Close();
    auto app = lrb::BuildLRBApplication(feed).value();
    VirtualClock clock;
    CostModel cm;
    SCWFDirector d(std::make_unique<QBSScheduler>());
    CWF_CHECK(d.Initialize(app.workflow.get(), &clock, &cm).ok());
    CWF_CHECK(d.Run(Timestamp::Seconds(90)).ok());
    return app.toll_calculator->tolls_calculated();
  };
  EXPECT_EQ(run(original), run(*loaded));
  std::remove(path.c_str());
}

TEST(IntegrationTest, WaveSynchronizationAcrossFanOut) {
  // src fans each tuple into 3 children; a wave-window actor reassembles
  // exactly the children of each external event.
  Workflow wf("waves");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* fan = wf.AddActor<FlatMapActor>("fan", [](const Token& t) {
    return std::vector<Token>{Token(t.AsInt()), Token(t.AsInt() * 10),
                              Token(t.AsInt() * 100)};
  });
  auto* sync = wf.AddActor<WindowFnActor>(
      "sync", WindowSpec::Waves(1, 1),
      [](const Window& w, std::vector<Token>* out) {
        int64_t sum = 0;
        for (const auto& e : w.events) {
          sum += e.token.AsInt();
        }
        out->push_back(Token(sum));
        return Status::OK();
      });
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(src->out(), fan->in()).ok());
  ASSERT_TRUE(wf.Connect(fan->out(), sync->in()).ok());
  ASSERT_TRUE(wf.Connect(sync->out(), sink->in()).ok());
  for (int i = 1; i <= 5; ++i) {
    feed->Push(Token(i), Timestamp::Seconds(i));
  }
  feed->Close();
  VirtualClock clock;
  CostModel cm;
  SCWFDirector d(std::make_unique<RRScheduler>());
  ASSERT_TRUE(d.Initialize(&wf, &clock, &cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  auto got = sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(got[i].token.AsInt(), (i + 1) * 111);  // i + 10i + 100i
  }
}

TEST(IntegrationTest, TwoLRBInstancesUnderGlobalScheduler) {
  lrb::GeneratorOptions gopt;
  gopt.duration = Seconds(60);
  auto build = [&](const std::string& name, uint64_t seed) {
    lrb::GeneratorOptions o = gopt;
    o.seed = seed;
    lrb::Generator gen(o);
    auto feed = std::make_shared<PushChannel>();
    feed->PushTrace(gen.Generate());
    feed->Close();
    auto app = lrb::BuildLRBApplication(feed).value();
    auto manager = std::make_unique<Manager>(
        name, std::move(app.workflow),
        std::make_unique<SCWFDirector>(std::make_unique<QBSScheduler>()));
    struct Out {
      std::unique_ptr<Manager> manager;
      std::shared_ptr<db::Database> db;
      std::unique_ptr<lrb::ResponseTimeSeries> toll;
      std::unique_ptr<lrb::ResponseTimeSeries> acc;
      lrb::TollCalculator* tc;
    };
    return Out{std::move(manager), app.database, std::move(app.toll_series),
               std::move(app.accident_series), app.toll_calculator};
  };
  auto a = build("lrb_a", 1);
  auto b = build("lrb_b", 2);
  VirtualClock clock;
  CostModel cm;
  ASSERT_TRUE(a.manager->Initialize(&clock, &cm).ok());
  ASSERT_TRUE(b.manager->Initialize(&clock, &cm).ok());
  ConnectionController cc;
  Manager* ma = a.manager.get();
  Manager* mb = b.manager.get();
  ASSERT_TRUE(cc.Register(std::move(a.manager)).ok());
  ASSERT_TRUE(cc.Register(std::move(b.manager)).ok());
  GlobalScheduler gs;
  for (Manager* m : cc.Managers()) {
    gs.AddManager(m);
  }
  ASSERT_TRUE(gs.Run(&clock, Timestamp::Seconds(120)).ok());
  EXPECT_GT(a.tc->tolls_calculated(), 0u);
  EXPECT_GT(b.tc->tolls_calculated(), 0u);
  EXPECT_GT(ma->cpu_time_used(), 0);
  EXPECT_GT(mb->cpu_time_used(), 0);
  // Control plane still works afterwards.
  EXPECT_TRUE(cc.Execute("stop lrb_a").ok());
  EXPECT_NE(cc.Execute("list")->find("lrb_a STOPPED"), std::string::npos);
}

TEST(IntegrationTest, ExpiredItemsQueueIsObservable) {
  // The paper's expired-items queue: a sliding window's evicted events are
  // retrievable by the application.
  Workflow wf("exp");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("src", feed);
  auto* win = wf.AddActor<WindowFnActor>(
      "win", WindowSpec::Tuples(2, 1),
      [](const Window&, std::vector<Token>*) { return Status::OK(); });
  ASSERT_TRUE(wf.Connect(src->out(), win->in()).ok());
  for (int i = 0; i < 6; ++i) {
    feed->Push(Token(i), Timestamp(0));
  }
  feed->Close();
  VirtualClock clock;
  CostModel cm;
  SCWFDirector d(std::make_unique<QBSScheduler>());
  ASSERT_TRUE(d.Initialize(&wf, &clock, &cm).ok());
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  auto expired = win->in()->DrainExpired();
  // Windows (0,1)..(4,5) each slide one event out: events 0..4 expired.
  EXPECT_EQ(expired.size(), 5u);
}

}  // namespace
}  // namespace cwf

#include <gtest/gtest.h>

#include "window/window_spec.h"

namespace cwf {
namespace {

TEST(WindowSpecTest, SingleEventIsTrivial) {
  WindowSpec s = WindowSpec::SingleEvent();
  EXPECT_TRUE(s.IsTrivial());
  EXPECT_EQ(s.unit, WindowUnit::kTuples);
  EXPECT_EQ(s.size, 1);
  EXPECT_EQ(s.step, 1);
  EXPECT_TRUE(s.delete_used_events);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(WindowSpecTest, FactoriesSetUnits) {
  EXPECT_EQ(WindowSpec::Tuples(4, 1).unit, WindowUnit::kTuples);
  EXPECT_EQ(WindowSpec::Time(Seconds(60), Seconds(60)).unit,
            WindowUnit::kTime);
  EXPECT_EQ(WindowSpec::Waves().unit, WindowUnit::kWaves);
}

TEST(WindowSpecTest, BuilderChains) {
  WindowSpec s = WindowSpec::Tuples(4, 2)
                     .GroupBy({"car"})
                     .DeleteUsedEvents(true);
  EXPECT_EQ(s.size, 4);
  EXPECT_EQ(s.step, 2);
  EXPECT_EQ(s.group_by, std::vector<std::string>{"car"});
  EXPECT_TRUE(s.delete_used_events);
  EXPECT_FALSE(s.IsTrivial());
}

TEST(WindowSpecTest, ConsumptionModeDerivation) {
  EXPECT_EQ(WindowSpec::Tuples(4, 1).consumption_mode(),
            ConsumptionMode::kContinuous);
  EXPECT_EQ(WindowSpec::Tuples(4, 4).consumption_mode(),
            ConsumptionMode::kUnrestricted);
  EXPECT_EQ(WindowSpec::Tuples(4, 1).DeleteUsedEvents(true).consumption_mode(),
            ConsumptionMode::kRecent);
}

TEST(WindowSpecTest, ValidationRejectsNonPositive) {
  EXPECT_FALSE(WindowSpec::Tuples(0, 1).Validate().ok());
  EXPECT_FALSE(WindowSpec::Tuples(1, 0).Validate().ok());
  EXPECT_FALSE(WindowSpec::Tuples(-3, 1).Validate().ok());
  EXPECT_TRUE(WindowSpec::Tuples(1, 5).Validate().ok());  // step > size legal
}

TEST(WindowSpecTest, ValidationRejectsTimeoutOnNonTimeWindows) {
  WindowSpec s = WindowSpec::Tuples(2, 1);
  s.formation_timeout = 100;
  EXPECT_FALSE(s.Validate().ok());
  WindowSpec t = WindowSpec::Time(Seconds(1), Seconds(1)).FormationTimeout(100);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(WindowSpecTest, ValidationRejectsEmptyGroupByField) {
  WindowSpec s = WindowSpec::Tuples(2, 1).GroupBy({"a", ""});
  EXPECT_FALSE(s.Validate().ok());
}

TEST(WindowSpecTest, ToStringMentionsKeyParameters) {
  const std::string str =
      WindowSpec::Time(Seconds(60), Seconds(30)).GroupBy({"seg"}).ToString();
  EXPECT_NE(str.find("time"), std::string::npos);
  EXPECT_NE(str.find("seg"), std::string::npos);
}

TEST(WindowUnitNameTest, Names) {
  EXPECT_STREQ(WindowUnitName(WindowUnit::kTuples), "tuples");
  EXPECT_STREQ(WindowUnitName(WindowUnit::kTime), "time");
  EXPECT_STREQ(WindowUnitName(WindowUnit::kWaves), "waves");
}

}  // namespace
}  // namespace cwf

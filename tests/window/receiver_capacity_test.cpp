// Capacity bounds and high-water-mark accounting on receivers — the
// runtime half of the static capacity planner's feedback edge.

#include <gtest/gtest.h>

#include "core/port.h"
#include "test_util.h"
#include "window/windowed_receiver.h"

namespace cwf {
namespace {

using testutil::Ev;

TEST(ReceiverCapacityTest, UnboundedByDefault) {
  InputPort port(nullptr, "in", WindowSpec::SingleEvent());
  QueueReceiver r(&port);
  EXPECT_EQ(r.capacity(), 0u);
  EXPECT_EQ(r.overflow_policy(), OverflowPolicy::kUnbounded);
  EXPECT_FALSE(r.AtCapacity());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(r.Put(Ev(Token(i), i)).ok());
  }
  EXPECT_FALSE(r.AtCapacity());
  EXPECT_EQ(r.QueueDepth(), 100u);
  EXPECT_EQ(r.high_water_mark(), 100u);
}

TEST(ReceiverCapacityTest, AtCapacityTracksQueueDepth) {
  InputPort port(nullptr, "in", WindowSpec::SingleEvent());
  QueueReceiver r(&port);
  r.SetCapacity(2, OverflowPolicy::kBlock);
  EXPECT_EQ(r.capacity(), 2u);
  EXPECT_EQ(r.overflow_policy(), OverflowPolicy::kBlock);
  ASSERT_TRUE(r.Put(Ev(Token(1), 1)).ok());
  EXPECT_FALSE(r.AtCapacity());
  ASSERT_TRUE(r.Put(Ev(Token(2), 2)).ok());
  EXPECT_TRUE(r.AtCapacity());
  ASSERT_TRUE(r.Get().has_value());
  EXPECT_FALSE(r.AtCapacity());
  EXPECT_EQ(r.high_water_mark(), 2u);
}

TEST(ReceiverCapacityTest, ZeroCapacityResetsPolicyToUnbounded) {
  InputPort port(nullptr, "in", WindowSpec::SingleEvent());
  QueueReceiver r(&port);
  r.SetCapacity(4, OverflowPolicy::kBlock);
  r.SetCapacity(0, OverflowPolicy::kBlock);
  EXPECT_EQ(r.capacity(), 0u);
  EXPECT_EQ(r.overflow_policy(), OverflowPolicy::kUnbounded);
  EXPECT_FALSE(r.AtCapacity());
}

TEST(ReceiverCapacityTest, HighWaterMarkIsMonotoneUntilReset) {
  InputPort port(nullptr, "in", WindowSpec::SingleEvent());
  QueueReceiver r(&port);
  ASSERT_TRUE(r.Put(Ev(Token(1), 1)).ok());
  ASSERT_TRUE(r.Put(Ev(Token(2), 2)).ok());
  ASSERT_TRUE(r.Get().has_value());
  ASSERT_TRUE(r.Get().has_value());
  ASSERT_TRUE(r.Put(Ev(Token(3), 3)).ok());
  // Draining does not lower the mark; a shallower refill does not raise it.
  EXPECT_EQ(r.high_water_mark(), 2u);
  r.ResetHighWaterMark();
  EXPECT_EQ(r.high_water_mark(), 0u);
  // Token 3 is still queued, so the next deposit observes depth 2.
  ASSERT_TRUE(r.Put(Ev(Token(4), 4)).ok());
  EXPECT_EQ(r.high_water_mark(), 2u);
}

TEST(ReceiverCapacityTest, WindowedReceiverCountsPendingPlusReady) {
  // Tuples(2, 2): depth counts buffered-but-unwindowed events AND formed
  // windows awaiting the consumer — the planner's "queued units".
  InputPort port(nullptr, "in", WindowSpec::Tuples(2, 2));
  WindowedReceiver r(&port, port.spec());
  ASSERT_TRUE(r.Put(Ev(Token(1), 1)).ok());
  EXPECT_EQ(r.QueueDepth(), 1u);  // 1 pending
  ASSERT_TRUE(r.Put(Ev(Token(2), 2)).ok());
  EXPECT_EQ(r.QueueDepth(), 1u);  // 0 pending + 1 ready window
  ASSERT_TRUE(r.Put(Ev(Token(3), 3)).ok());
  EXPECT_EQ(r.QueueDepth(), 2u);  // 1 pending + 1 ready
  EXPECT_EQ(r.high_water_mark(), 2u);
  r.SetCapacity(2, OverflowPolicy::kBlock);
  EXPECT_TRUE(r.AtCapacity());
  ASSERT_TRUE(r.Get().has_value());
  EXPECT_FALSE(r.AtCapacity());
}

TEST(ReceiverCapacityTest, FlushRecordsDepthOfForcedWindows) {
  InputPort port(nullptr, "in", WindowSpec::Tuples(3, 3));
  WindowedReceiver r(&port, port.spec());
  ASSERT_TRUE(r.Put(Ev(Token(1), 1)).ok());
  ASSERT_TRUE(r.Put(Ev(Token(2), 2)).ok());
  r.Flush();
  EXPECT_GE(r.high_water_mark(), r.QueueDepth());
}

}  // namespace
}  // namespace cwf

#include <gtest/gtest.h>

#include "test_util.h"
#include "window/window_operator.h"

namespace cwf {
namespace {

using testutil::Ints;

CWEvent WaveEv(int64_t value, WaveTag tag, bool last, uint64_t seq) {
  CWEvent e;
  e.token = Token(value);
  e.timestamp = Timestamp(static_cast<int64_t>(seq));
  e.wave = std::move(tag);
  e.last_in_wave = last;
  e.seq = seq;
  return e;
}

TEST(WaveWindowTest, RootEventIsACompleteWave) {
  WindowOperator op(WindowSpec::Waves(1, 1));
  std::vector<Window> out;
  CWEvent root = WaveEv(7, WaveTag::Root(1), /*last=*/true, 1);
  ASSERT_TRUE(op.Put(root, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(Ints(out[0]), (std::vector<int64_t>{7}));
}

TEST(WaveWindowTest, SubWaveCompletesOnLastSerial) {
  WindowOperator op(WindowSpec::Waves(1, 1));
  std::vector<Window> out;
  WaveTag parent = WaveTag::Root(5);
  // Wave t5: events t5.1, t5.2, t5.3 with the third marked last.
  ASSERT_TRUE(op.Put(WaveEv(1, parent.Child(1), false, 1), &out).ok());
  ASSERT_TRUE(op.Put(WaveEv(2, parent.Child(2), false, 2), &out).ok());
  EXPECT_TRUE(out.empty());  // not complete
  ASSERT_TRUE(op.Put(WaveEv(3, parent.Child(3), true, 3), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(Ints(out[0]), (std::vector<int64_t>{1, 2, 3}));
}

TEST(WaveWindowTest, LastArrivingOutOfOrderStillCompletes) {
  WindowOperator op(WindowSpec::Waves(1, 1));
  std::vector<Window> out;
  WaveTag parent = WaveTag::Root(9);
  // The "last" marker (serial 2) arrives before serial 1.
  ASSERT_TRUE(op.Put(WaveEv(2, parent.Child(2), true, 1), &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(op.Put(WaveEv(1, parent.Child(1), false, 2), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 2u);
}

TEST(WaveWindowTest, InterleavedWavesSeparateCorrectly) {
  WindowOperator op(WindowSpec::Waves(1, 1));
  std::vector<Window> out;
  WaveTag wa = WaveTag::Root(1);
  WaveTag wb = WaveTag::Root(2);
  ASSERT_TRUE(op.Put(WaveEv(11, wa.Child(1), false, 1), &out).ok());
  ASSERT_TRUE(op.Put(WaveEv(21, wb.Child(1), false, 2), &out).ok());
  ASSERT_TRUE(op.Put(WaveEv(22, wb.Child(2), true, 3), &out).ok());
  ASSERT_EQ(out.size(), 1u);  // wave b complete first
  EXPECT_EQ(Ints(out[0]), (std::vector<int64_t>{21, 22}));
  ASSERT_TRUE(op.Put(WaveEv(12, wa.Child(2), true, 4), &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(Ints(out[1]), (std::vector<int64_t>{11, 12}));
}

TEST(WaveWindowTest, MultiWaveWindowGathersSeveralWaves) {
  WindowOperator op(WindowSpec::Waves(2, 2));
  std::vector<Window> out;
  ASSERT_TRUE(op.Put(WaveEv(1, WaveTag::Root(1), true, 1), &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(op.Put(WaveEv(2, WaveTag::Root(2), true, 2), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 2u);
}

TEST(WaveWindowTest, SlidingWavesExpireDroppedWave) {
  WindowOperator op(WindowSpec::Waves(2, 1));
  std::vector<Window> out;
  ASSERT_TRUE(op.Put(WaveEv(1, WaveTag::Root(1), true, 1), &out).ok());
  ASSERT_TRUE(op.Put(WaveEv(2, WaveTag::Root(2), true, 2), &out).ok());
  ASSERT_TRUE(op.Put(WaveEv(3, WaveTag::Root(3), true, 3), &out).ok());
  ASSERT_EQ(out.size(), 2u);  // {1,2}, {2,3}
  // Waves 1 and 2 have slid out of scope by now.
  auto expired = op.DrainExpired();
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0].token.AsInt(), 1);
  EXPECT_EQ(expired[1].token.AsInt(), 2);
}

TEST(WaveWindowTest, DeleteUsedConsumesWaves) {
  WindowOperator op(WindowSpec::Waves(2, 1).DeleteUsedEvents(true));
  std::vector<Window> out;
  for (uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(op.Put(WaveEv(static_cast<int64_t>(i), WaveTag::Root(i), true,
                              i),
                       &out)
                    .ok());
  }
  ASSERT_EQ(out.size(), 2u);  // {1,2}, {3,4}
  EXPECT_TRUE(op.DrainExpired().empty());
}

TEST(WaveWindowTest, FlushEmitsCompletedButUnwindowedWaves) {
  WindowOperator op(WindowSpec::Waves(3, 3));
  std::vector<Window> out;
  ASSERT_TRUE(op.Put(WaveEv(1, WaveTag::Root(1), true, 1), &out).ok());
  ASSERT_TRUE(op.Put(WaveEv(2, WaveTag::Root(2), true, 2), &out).ok());
  EXPECT_TRUE(out.empty());
  op.Flush(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 2u);
}

TEST(WaveWindowTest, PendingCountsBufferedWaveEvents) {
  WindowOperator op(WindowSpec::Waves(1, 1));
  std::vector<Window> out;
  WaveTag parent = WaveTag::Root(3);
  ASSERT_TRUE(op.Put(WaveEv(1, parent.Child(1), false, 1), &out).ok());
  ASSERT_TRUE(op.Put(WaveEv(2, parent.Child(2), false, 2), &out).ok());
  EXPECT_EQ(op.PendingEventCount(), 2u);
}

}  // namespace
}  // namespace cwf

namespace cwf {
namespace {

using testutil::Rec;

CWEvent KeyedWaveEv(int64_t key, int64_t value, WaveTag tag, bool last,
                    uint64_t seq) {
  CWEvent e;
  e.token = Rec({{"k", Value(key)}, {"v", Value(value)}});
  e.timestamp = Timestamp(static_cast<int64_t>(seq));
  e.wave = std::move(tag);
  e.last_in_wave = last;
  e.seq = seq;
  return e;
}

TEST(WaveWindowTest, GroupByPartitionsWaves) {
  // Wave-based windows combined with group-by: each key synchronizes its
  // own share of the wave's events independently.
  WindowOperator op(WindowSpec::Waves(1, 1).GroupBy({"k"}));
  std::vector<Window> out;
  WaveTag w = WaveTag::Root(4);
  // One wave of 4 events, 2 per key; the last-marked event (serial 4)
  // belongs to key 1.
  ASSERT_TRUE(op.Put(KeyedWaveEv(0, 10, w.Child(1), false, 1), &out).ok());
  ASSERT_TRUE(op.Put(KeyedWaveEv(1, 11, w.Child(2), false, 2), &out).ok());
  ASSERT_TRUE(op.Put(KeyedWaveEv(0, 20, w.Child(3), false, 3), &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(op.Put(KeyedWaveEv(1, 21, w.Child(4), true, 4), &out).ok());
  // Key 1 saw the last marker with serial 4 but holds only 2 of the 4
  // serials; key 0 never saw the marker: per-key waves stay open until
  // their own completion criteria are met. Flush surfaces the remainder.
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(op.PendingEventCount(), 4u);
  op.Flush(&out);
  EXPECT_TRUE(out.empty());  // no *complete* waves existed per key
}

TEST(WaveWindowTest, GroupByWithPerKeyCompleteWaves) {
  // When each key receives a full wave of its own (its serial count matches
  // the last marker it sees), windows fire per key.
  WindowOperator op(WindowSpec::Waves(1, 1).GroupBy({"k"}));
  std::vector<Window> out;
  // Two root events (complete singleton waves), one per key.
  CWEvent a = KeyedWaveEv(0, 1, WaveTag::Root(1), true, 1);
  CWEvent b = KeyedWaveEv(1, 2, WaveTag::Root(2), true, 2);
  ASSERT_TRUE(op.Put(a, &out).ok());
  ASSERT_TRUE(op.Put(b, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].group_key.Field("k").AsInt(), 0);
  EXPECT_EQ(out[1].group_key.Field("k").AsInt(), 1);
}

}  // namespace
}  // namespace cwf

// Property-style parameterized sweeps over window semantics.

#include <gtest/gtest.h>

#include <numeric>

#include "test_util.h"
#include "window/window_operator.h"

namespace cwf {
namespace {

using testutil::Ev;

struct TupleParams {
  int64_t size;
  int64_t step;
  bool delete_used;
  int64_t n_events;
};

class TupleWindowProperty : public ::testing::TestWithParam<TupleParams> {};

// Invariant set for count-based windows over a strictly increasing stream:
//  1. every produced window has exactly `size` events;
//  2. window contents are contiguous, in-order slices;
//  3. consecutive windows start `step` (or `size` under consumption) apart;
//  4. conservation: every input event is in >=0 windows and ends up
//     used, pending or expired — never silently lost.
TEST_P(TupleWindowProperty, Invariants) {
  const TupleParams p = GetParam();
  WindowOperator op(
      WindowSpec::Tuples(p.size, p.step).DeleteUsedEvents(p.delete_used));
  std::vector<Window> windows;
  for (int64_t i = 0; i < p.n_events; ++i) {
    ASSERT_TRUE(op.Put(Ev(Token(i), i + 1), &windows).ok());
  }
  const int64_t advance = p.delete_used ? p.size : p.step;
  int64_t expected_start = 0;
  for (const Window& w : windows) {
    ASSERT_EQ(static_cast<int64_t>(w.size()), p.size);
    for (size_t i = 0; i < w.size(); ++i) {
      EXPECT_EQ(w.events[i].token.AsInt(),
                expected_start + static_cast<int64_t>(i));
    }
    expected_start += advance;
  }
  // Expected window count: floor((n - size) / advance) + 1 when n >= size.
  const int64_t expected_windows =
      p.n_events >= p.size ? (p.n_events - p.size) / advance + 1 : 0;
  EXPECT_EQ(static_cast<int64_t>(windows.size()), expected_windows);

  // Conservation.
  const size_t expired = op.DrainExpired().size();
  const size_t pending = op.PendingEventCount();
  if (p.delete_used) {
    EXPECT_EQ(static_cast<int64_t>(pending),
              p.n_events - expected_windows * p.size);
    EXPECT_EQ(expired, 0u);
  } else {
    EXPECT_EQ(static_cast<int64_t>(pending + expired), p.n_events);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TupleWindowProperty,
    ::testing::Values(TupleParams{1, 1, false, 10}, TupleParams{1, 1, true, 10},
                      TupleParams{4, 1, false, 25}, TupleParams{4, 1, true, 25},
                      TupleParams{4, 4, false, 25}, TupleParams{4, 4, true, 25},
                      TupleParams{2, 3, false, 20}, TupleParams{2, 3, true, 20},
                      TupleParams{5, 2, false, 33}, TupleParams{7, 7, true, 50},
                      TupleParams{10, 3, false, 100},
                      TupleParams{3, 10, false, 100}));

struct TimeParams {
  int64_t size_s;
  int64_t step_s;
  bool delete_used;
  int64_t n_events;
  int64_t spacing_s;  // inter-event gap
};

class TimeWindowProperty : public ::testing::TestWithParam<TimeParams> {};

// Invariants for time windows over an in-order stream:
//  1. all events of a window fall within one [start, start+size) span;
//  2. window spans are step-aligned to the epoch;
//  3. events are never lost (window'd, pending or expired).
TEST_P(TimeWindowProperty, Invariants) {
  const TimeParams p = GetParam();
  WindowOperator op(WindowSpec::Time(Seconds(p.size_s), Seconds(p.step_s))
                        .DeleteUsedEvents(p.delete_used));
  std::vector<Window> windows;
  for (int64_t i = 0; i < p.n_events; ++i) {
    ASSERT_TRUE(
        op.Put(Ev(Token(i), Seconds(1 + i * p.spacing_s)), &windows).ok());
  }
  op.Flush(&windows);
  size_t events_in_windows = 0;
  for (const Window& w : windows) {
    ASSERT_FALSE(w.empty());
    const int64_t span =
        w.back().timestamp.micros() - w.front().timestamp.micros();
    EXPECT_LT(span, Seconds(p.size_s));
    events_in_windows += w.size();
  }
  if (p.delete_used) {
    // Consumption semantics: every event lands in exactly one window or
    // expires unused (stragglers between gapped windows).
    EXPECT_EQ(static_cast<int64_t>(events_in_windows +
                                   op.DrainExpired().size()),
              p.n_events);
  } else if (p.step_s >= p.size_s) {
    // Non-consuming tumbling windows: each event appears in at most one
    // window (and additionally expires once it slides out).
    EXPECT_LE(static_cast<int64_t>(events_in_windows), p.n_events);
    EXPECT_LE(static_cast<int64_t>(op.DrainExpired().size()), p.n_events);
  } else {
    // Overlapping windows may duplicate events.
    EXPECT_GE(static_cast<int64_t>(events_in_windows), p.n_events);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TimeWindowProperty,
    ::testing::Values(TimeParams{60, 60, true, 50, 7},
                      TimeParams{60, 60, false, 50, 7},
                      TimeParams{60, 30, false, 50, 7},
                      TimeParams{10, 10, true, 100, 1},
                      TimeParams{10, 5, false, 100, 1},
                      TimeParams{5, 20, true, 60, 2},
                      TimeParams{120, 120, true, 30, 11}));

// Group-by property: windows formed per key match windows formed by running
// one operator per key.
class GroupByProperty : public ::testing::TestWithParam<int> {};

TEST_P(GroupByProperty, EquivalentToPerKeyOperators) {
  const int num_keys = GetParam();
  WindowOperator grouped(WindowSpec::Tuples(3, 2).GroupBy({"k"}));
  std::vector<std::unique_ptr<WindowOperator>> isolated;
  for (int k = 0; k < num_keys; ++k) {
    isolated.push_back(
        std::make_unique<WindowOperator>(WindowSpec::Tuples(3, 2)));
  }
  std::vector<Window> grouped_out;
  std::vector<std::vector<Window>> isolated_out(num_keys);
  for (int64_t i = 0; i < 200; ++i) {
    const int k = static_cast<int>((i * 7) % num_keys);
    CWEvent e = Ev(testutil::Rec({{"k", Value(k)}, {"v", Value(i)}}), i + 1);
    ASSERT_TRUE(grouped.Put(e, &grouped_out).ok());
    ASSERT_TRUE(isolated[k]->Put(e, &isolated_out[k]).ok());
  }
  // Same total window count, and grouped windows per key equal isolated ones.
  size_t total_isolated = 0;
  for (const auto& outs : isolated_out) {
    total_isolated += outs.size();
  }
  ASSERT_EQ(grouped_out.size(), total_isolated);
  std::vector<size_t> cursor(num_keys, 0);
  for (const Window& w : grouped_out) {
    const int k = static_cast<int>(w.group_key.Field("k").AsInt());
    const Window& expect = isolated_out[k][cursor[k]++];
    ASSERT_EQ(w.size(), expect.size());
    for (size_t i = 0; i < w.size(); ++i) {
      EXPECT_EQ(w.events[i].token.Field("v").AsInt(),
                expect.events[i].token.Field("v").AsInt());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GroupByProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace cwf

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"
#include "window/window_operator.h"

namespace cwf {
namespace {

using testutil::Ev;
using testutil::Ints;
using testutil::Rec;

std::vector<Window> PutAll(WindowOperator* op, std::vector<int64_t> values) {
  std::vector<Window> out;
  int64_t ts = 0;
  for (int64_t v : values) {
    EXPECT_TRUE(op->Put(Ev(Token(v), ++ts), &out).ok());
  }
  return out;
}

TEST(TupleWindowTest, SlidingSize4Step1) {
  WindowOperator op(WindowSpec::Tuples(4, 1));
  auto windows = PutAll(&op, {1, 2, 3, 4, 5, 6});
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(Ints(windows[0]), (std::vector<int64_t>{1, 2, 3, 4}));
  EXPECT_EQ(Ints(windows[1]), (std::vector<int64_t>{2, 3, 4, 5}));
  EXPECT_EQ(Ints(windows[2]), (std::vector<int64_t>{3, 4, 5, 6}));
}

TEST(TupleWindowTest, TumblingSizeEqualsStep) {
  WindowOperator op(WindowSpec::Tuples(3, 3));
  auto windows = PutAll(&op, {1, 2, 3, 4, 5, 6, 7});
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(Ints(windows[0]), (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(Ints(windows[1]), (std::vector<int64_t>{4, 5, 6}));
  EXPECT_EQ(op.PendingEventCount(), 1u);
}

TEST(TupleWindowTest, SamplingStepGreaterThanSize) {
  // Windows of 2 every 3 events: the event between windows is skipped
  // (routed to the expired-items queue without ever joining a window).
  WindowOperator op(WindowSpec::Tuples(2, 3));
  auto windows = PutAll(&op, {1, 2, 3, 4, 5, 6, 7, 8});
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(Ints(windows[0]), (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(Ints(windows[1]), (std::vector<int64_t>{4, 5}));
  EXPECT_EQ(Ints(windows[2]), (std::vector<int64_t>{7, 8}));
  // Skipped events 3 and 6 expired unused.
  auto expired = op.DrainExpired();
  std::vector<int64_t> expired_vals;
  for (const auto& e : expired) expired_vals.push_back(e.token.AsInt());
  EXPECT_TRUE(std::find(expired_vals.begin(), expired_vals.end(), 3) !=
              expired_vals.end());
  EXPECT_TRUE(std::find(expired_vals.begin(), expired_vals.end(), 6) !=
              expired_vals.end());
}

TEST(TupleWindowTest, DeleteUsedEventsConsumesWholeWindow) {
  WindowOperator op(WindowSpec::Tuples(4, 1).DeleteUsedEvents(true));
  auto windows = PutAll(&op, {1, 2, 3, 4, 5, 6, 7, 8});
  // Consumption semantics: each window uses up its 4 events.
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(Ints(windows[0]), (std::vector<int64_t>{1, 2, 3, 4}));
  EXPECT_EQ(Ints(windows[1]), (std::vector<int64_t>{5, 6, 7, 8}));
}

TEST(TupleWindowTest, ExpiredEventsSlideOut) {
  WindowOperator op(WindowSpec::Tuples(2, 1));
  PutAll(&op, {1, 2, 3});
  auto expired = op.DrainExpired();
  ASSERT_EQ(expired.size(), 2u);  // 1 and 2 slid out of scope
  EXPECT_EQ(expired[0].token.AsInt(), 1);
  EXPECT_EQ(expired[1].token.AsInt(), 2);
  EXPECT_TRUE(op.DrainExpired().empty());  // drained
}

TEST(TupleWindowTest, NoExpiredUnderConsumptionMode) {
  WindowOperator op(WindowSpec::Tuples(2, 1).DeleteUsedEvents(true));
  PutAll(&op, {1, 2, 3, 4});
  EXPECT_TRUE(op.DrainExpired().empty());
}

TEST(TupleWindowTest, GroupByPartitionsStream) {
  WindowOperator op(WindowSpec::Tuples(2, 1).GroupBy({"car"}));
  std::vector<Window> out;
  int64_t ts = 0;
  for (int64_t car : {1, 2, 1, 2, 1}) {
    ++ts;
    ASSERT_TRUE(
        op.Put(Ev(Rec({{"car", Value(car)}, {"n", Value(ts)}}), ts), &out)
            .ok());
  }
  // car 1 gets windows (n1,n3) and (n3,n5); car 2 gets (n2,n4). Production
  // order follows the closing events: n3 (car 1), n4 (car 2), n5 (car 1).
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(op.GroupCount(), 2u);
  EXPECT_EQ(out[0].group_key.Field("car").AsInt(), 1);
  EXPECT_EQ(out[1].group_key.Field("car").AsInt(), 2);
  EXPECT_EQ(out[2].group_key.Field("car").AsInt(), 1);
}

TEST(TupleWindowTest, GroupKeyTokenCarriesAllFields) {
  WindowOperator op(WindowSpec::Tuples(1, 1).GroupBy({"xway", "seg"}));
  std::vector<Window> out;
  ASSERT_TRUE(
      op.Put(Ev(Rec({{"xway", 1}, {"seg", 33}, {"v", 9}}), 1), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].group_key.Field("xway").AsInt(), 1);
  EXPECT_EQ(out[0].group_key.Field("seg").AsInt(), 33);
  EXPECT_FALSE(out[0].group_key.AsRecord()->Has("v"));
}

TEST(TupleWindowTest, GroupByRejectsNonRecordTokens) {
  WindowOperator op(WindowSpec::Tuples(1, 1).GroupBy({"car"}));
  std::vector<Window> out;
  EXPECT_EQ(op.Put(Ev(Token(5), 1), &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(TupleWindowTest, GroupByRejectsMissingField) {
  WindowOperator op(WindowSpec::Tuples(1, 1).GroupBy({"car"}));
  std::vector<Window> out;
  EXPECT_FALSE(op.Put(Ev(Rec({{"other", 1}}), 1), &out).ok());
}

TEST(TupleWindowTest, FlushEmitsPartialWindows) {
  WindowOperator op(WindowSpec::Tuples(4, 4));
  PutAll(&op, {1, 2});
  std::vector<Window> out;
  op.Flush(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(Ints(out[0]), (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(op.PendingEventCount(), 0u);
}

TEST(TupleWindowTest, WindowsProducedCounter) {
  WindowOperator op(WindowSpec::Tuples(2, 2));
  PutAll(&op, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(op.windows_produced(), 3u);
}

TEST(TupleWindowTest, NoDeadlinesForTupleWindows) {
  WindowOperator op(WindowSpec::Tuples(2, 1));
  PutAll(&op, {1});
  EXPECT_EQ(op.NextDeadline(), Timestamp::Max());
  std::vector<Window> out;
  op.OnTimeout(Timestamp::Max(), &out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace cwf

#include <gtest/gtest.h>

#include "test_util.h"
#include "window/window_operator.h"

namespace cwf {
namespace {

using testutil::Ev;
using testutil::Ints;
using testutil::Rec;

TEST(TimeWindowTest, TumblingMinuteClosedByLaterEvent) {
  WindowOperator op(WindowSpec::Time(Seconds(60), Seconds(60)));
  std::vector<Window> out;
  ASSERT_TRUE(op.Put(Ev(Token(1), Seconds(10)), &out).ok());
  ASSERT_TRUE(op.Put(Ev(Token(2), Seconds(50)), &out).ok());
  EXPECT_TRUE(out.empty());
  // An event of the next minute closes [0, 60).
  ASSERT_TRUE(op.Put(Ev(Token(3), Seconds(65)), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(Ints(out[0]), (std::vector<int64_t>{1, 2}));
  EXPECT_FALSE(out[0].closed_by_timeout);
}

TEST(TimeWindowTest, EpochAlignment) {
  WindowOperator op(WindowSpec::Time(Seconds(60), Seconds(60)));
  std::vector<Window> out;
  // First event at t=70 => window [60, 120), not [70, 130).
  ASSERT_TRUE(op.Put(Ev(Token(1), Seconds(70)), &out).ok());
  ASSERT_TRUE(op.Put(Ev(Token(2), Seconds(119)), &out).ok());
  ASSERT_TRUE(op.Put(Ev(Token(3), Seconds(120)), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(Ints(out[0]), (std::vector<int64_t>{1, 2}));
}

TEST(TimeWindowTest, TimeoutClosesWindow) {
  WindowOperator op(
      WindowSpec::Time(Seconds(60), Seconds(60)).FormationTimeout(Seconds(5)));
  std::vector<Window> out;
  ASSERT_TRUE(op.Put(Ev(Token(1), Seconds(10)), &out).ok());
  EXPECT_EQ(op.NextDeadline(), Timestamp::Seconds(65));
  op.OnTimeout(Timestamp::Seconds(64), &out);
  EXPECT_TRUE(out.empty());  // not due yet
  op.OnTimeout(Timestamp::Seconds(65), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].closed_by_timeout);
  EXPECT_EQ(op.NextDeadline(), Timestamp::Max());
}

TEST(TimeWindowTest, ZeroTimeoutFiresAtBoundary) {
  WindowOperator op(WindowSpec::Time(Seconds(60), Seconds(60)));
  std::vector<Window> out;
  ASSERT_TRUE(op.Put(Ev(Token(1), Seconds(30)), &out).ok());
  EXPECT_EQ(op.NextDeadline(), Timestamp::Seconds(60));
}

TEST(TimeWindowTest, NegativeTimeoutDisablesDeadlines) {
  WindowOperator op(
      WindowSpec::Time(Seconds(60), Seconds(60)).FormationTimeout(-1));
  std::vector<Window> out;
  ASSERT_TRUE(op.Put(Ev(Token(1), Seconds(30)), &out).ok());
  EXPECT_EQ(op.NextDeadline(), Timestamp::Max());
}

TEST(TimeWindowTest, GapFastForwardsWithoutEmptyWindows) {
  WindowOperator op(WindowSpec::Time(Seconds(60), Seconds(60)));
  std::vector<Window> out;
  ASSERT_TRUE(op.Put(Ev(Token(1), Seconds(10)), &out).ok());
  // Jump three minutes ahead: closes [0,60) and realigns to [180,240).
  ASSERT_TRUE(op.Put(Ev(Token(2), Seconds(200)), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(Ints(out[0]), (std::vector<int64_t>{1}));
  ASSERT_TRUE(op.Put(Ev(Token(3), Seconds(240)), &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(Ints(out[1]), (std::vector<int64_t>{2}));
}

TEST(TimeWindowTest, SlidingTimeWindowRetainsOverlap) {
  // 60s window sliding every 30s, no consumption.
  WindowOperator op(WindowSpec::Time(Seconds(60), Seconds(30)));
  std::vector<Window> out;
  ASSERT_TRUE(op.Put(Ev(Token(1), Seconds(10)), &out).ok());
  ASSERT_TRUE(op.Put(Ev(Token(2), Seconds(40)), &out).ok());
  ASSERT_TRUE(op.Put(Ev(Token(3), Seconds(70)), &out).ok());  // closes [0,60)
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(Ints(out[0]), (std::vector<int64_t>{1, 2}));
  // Window is now [30, 90): event 1 (t=10) expired, event 2 retained.
  auto expired = op.DrainExpired();
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].token.AsInt(), 1);
  ASSERT_TRUE(op.Put(Ev(Token(4), Seconds(95)), &out).ok());  // closes [30,90)
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(Ints(out[1]), (std::vector<int64_t>{2, 3}));
}

TEST(TimeWindowTest, DeleteUsedEventsClearsQueueOnClose) {
  WindowOperator op(
      WindowSpec::Time(Seconds(60), Seconds(30)).DeleteUsedEvents(true));
  std::vector<Window> out;
  ASSERT_TRUE(op.Put(Ev(Token(1), Seconds(10)), &out).ok());
  ASSERT_TRUE(op.Put(Ev(Token(2), Seconds(40)), &out).ok());
  ASSERT_TRUE(op.Put(Ev(Token(3), Seconds(70)), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  // Consumption: both events used; only event 3 remains pending.
  EXPECT_EQ(op.PendingEventCount(), 1u);
}

TEST(TimeWindowTest, StragglerGoesToExpired) {
  WindowOperator op(WindowSpec::Time(Seconds(60), Seconds(60)));
  std::vector<Window> out;
  ASSERT_TRUE(op.Put(Ev(Token(1), Seconds(70)), &out).ok());
  ASSERT_TRUE(op.Put(Ev(Token(2), Seconds(10)), &out).ok());  // late
  auto expired = op.DrainExpired();
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].token.AsInt(), 2);
}

TEST(TimeWindowTest, PerGroupWindowsCloseIndependently) {
  WindowOperator op(
      WindowSpec::Time(Seconds(60), Seconds(60)).GroupBy({"seg"}));
  std::vector<Window> out;
  ASSERT_TRUE(op.Put(Ev(Rec({{"seg", 1}, {"v", 10}}), Seconds(10)), &out).ok());
  ASSERT_TRUE(op.Put(Ev(Rec({{"seg", 2}, {"v", 20}}), Seconds(20)), &out).ok());
  // Close only seg 1's window.
  ASSERT_TRUE(op.Put(Ev(Rec({{"seg", 1}, {"v", 11}}), Seconds(61)), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].group_key.Field("seg").AsInt(), 1);
  // Seg 2's deadline still pending.
  EXPECT_EQ(op.NextDeadline(), Timestamp::Seconds(60));
  op.OnTimeout(Timestamp::Seconds(60), &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].group_key.Field("seg").AsInt(), 2);
}

TEST(TimeWindowTest, DeadlineIndexTracksManyGroups) {
  WindowOperator op(
      WindowSpec::Time(Seconds(60), Seconds(60)).GroupBy({"car"}));
  std::vector<Window> out;
  for (int64_t car = 0; car < 100; ++car) {
    ASSERT_TRUE(
        op.Put(Ev(Rec({{"car", Value(car)}}), Seconds(10)), &out).ok());
  }
  EXPECT_EQ(op.NextDeadline(), Timestamp::Seconds(60));
  op.OnTimeout(Timestamp::Seconds(60), &out);
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(op.NextDeadline(), Timestamp::Max());
}

TEST(TimeWindowTest, TimeoutProducesConsecutiveWindowsAfterLongSilence) {
  WindowOperator op(WindowSpec::Time(Seconds(60), Seconds(60)));
  std::vector<Window> out;
  ASSERT_TRUE(op.Put(Ev(Token(1), Seconds(10)), &out).ok());
  // Fire the timeout far in the future: one window; start advances past the
  // emptied queue and the deadline disappears.
  op.OnTimeout(Timestamp::Seconds(500), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(op.NextDeadline(), Timestamp::Max());
}

}  // namespace
}  // namespace cwf

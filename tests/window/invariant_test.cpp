// Engine invariant checks around windowed receivers: wave-tag monotonicity
// and scheduled-delivery provenance (CWF_ASSERT / CWF_DCHECK layer).

#include <gtest/gtest.h>

#include <vector>

#include "core/event.h"
#include "window/tm_windowed_receiver.h"
#include "window/window_operator.h"
#include "window/windowed_receiver.h"

namespace cwf {
namespace {

CWEvent RootEvent(uint64_t root_id, bool last = true) {
  CWEvent e(Token(static_cast<int64_t>(root_id)), Timestamp(0),
            WaveTag::Root(root_id));
  e.last_in_wave = last;
  e.seq = root_id;
  return e;
}

CWEvent ChildEvent(uint64_t root_id, uint32_t serial, bool last) {
  CWEvent e(Token(static_cast<int64_t>(root_id)), Timestamp(0),
            WaveTag::Root(root_id).Child(serial));
  e.last_in_wave = last;
  return e;
}

TEST(WaveMonotonicityTest, InterleavedPendingWavesAreLegal) {
  // Sub-waves of different external events may interleave while pending.
  WindowOperator op(WindowSpec::Waves(/*size=*/2, /*step=*/2));
  std::vector<Window> out;
  ASSERT_TRUE(op.Put(ChildEvent(1, 1, false), &out).ok());
  ASSERT_TRUE(op.Put(ChildEvent(2, 1, false), &out).ok());
  ASSERT_TRUE(op.Put(ChildEvent(1, 2, true), &out).ok());   // completes t1
  ASSERT_TRUE(op.Put(ChildEvent(2, 2, true), &out).ok());   // completes t2
  EXPECT_EQ(out.size(), 1u);  // one window of two waves, no aborts
}

#if defined(CWF_DCHECK_IS_ON) && CWF_DCHECK_IS_ON

TEST(WaveMonotonicityDeathTest, RegressingTagBehindConsumedFrontierAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        WindowOperator op(WindowSpec::Waves(/*size=*/1, /*step=*/1));
        std::vector<Window> out;
        // Wave t1 completes and is consumed into a window...
        (void)op.Put(RootEvent(1), &out);
        (void)op.Put(RootEvent(2), &out);
        // ... so a late event tagged into wave t1 regresses behind the
        // consumed frontier and must trip the invariant.
        (void)op.Put(ChildEvent(1, 1, false), &out);
      },
      "wave-tag monotonicity violated");
}

TEST(TMReceiverDeathTest, MisroutedDeliveryAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        InputPort port(nullptr, "in", WindowSpec::Waves());
        TMWindowedReceiver receiver(&port, WindowSpec::Waves(),
                                    [](TMWindowedReceiver*, Window) {});
        // No window was ever produced by this receiver, so any delivery is
        // a director routing bug.
        receiver.DeliverBuffered(Window{});
      },
      "misrouted delivery");
}

#endif  // CWF_DCHECK_IS_ON

TEST(TMReceiverTest, ProducedWindowsMayBeDeliveredBack) {
  InputPort port(nullptr, "in", WindowSpec::Waves());
  std::vector<Window> routed;
  TMWindowedReceiver receiver(
      &port, WindowSpec::Waves(),
      [&routed](TMWindowedReceiver*, Window w) { routed.push_back(std::move(w)); });
  ASSERT_TRUE(receiver.Put(RootEvent(1)).ok());
  ASSERT_EQ(routed.size(), 1u);
  receiver.DeliverBuffered(std::move(routed.front()));
  EXPECT_TRUE(receiver.HasWindow());
  auto w = receiver.Get();
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->events.size(), 1u);
}

}  // namespace
}  // namespace cwf

#include <gtest/gtest.h>

#include "core/port.h"
#include "test_util.h"
#include "window/tm_windowed_receiver.h"
#include "window/windowed_receiver.h"

namespace cwf {
namespace {

using testutil::Ev;
using testutil::Ints;

TEST(QueueReceiverTest, FifoSingleEventWindows) {
  InputPort port(nullptr, "in", WindowSpec::SingleEvent());
  QueueReceiver r(&port);
  EXPECT_FALSE(r.HasWindow());
  ASSERT_TRUE(r.Put(Ev(Token(1), 1)).ok());
  ASSERT_TRUE(r.Put(Ev(Token(2), 2)).ok());
  EXPECT_EQ(r.ReadyWindowCount(), 2u);
  EXPECT_EQ(r.Get()->events[0].token.AsInt(), 1);
  EXPECT_EQ(r.Get()->events[0].token.AsInt(), 2);
  EXPECT_FALSE(r.Get().has_value());
  EXPECT_EQ(r.port(), &port);
}

TEST(WindowedReceiverTest, ProducesWindowsOnPut) {
  InputPort port(nullptr, "in", WindowSpec::Tuples(2, 1));
  WindowedReceiver r(&port, port.spec());
  ASSERT_TRUE(r.Put(Ev(Token(1), 1)).ok());
  EXPECT_FALSE(r.HasWindow());
  EXPECT_EQ(r.PendingEventCount(), 1u);
  ASSERT_TRUE(r.Put(Ev(Token(2), 2)).ok());
  ASSERT_TRUE(r.HasWindow());
  EXPECT_EQ(Ints(*r.Get()), (std::vector<int64_t>{1, 2}));
}

TEST(WindowedReceiverTest, TrivialSpecBehavesLikeQueue) {
  InputPort port(nullptr, "in", WindowSpec::SingleEvent());
  WindowedReceiver r(&port, port.spec());
  ASSERT_TRUE(r.Put(Ev(Token(7), 1)).ok());
  ASSERT_TRUE(r.HasWindow());
  EXPECT_EQ(r.Get()->size(), 1u);
}

TEST(WindowedReceiverTest, TimeoutSurfacesThroughReceiver) {
  WindowSpec spec = WindowSpec::Time(Seconds(60), Seconds(60));
  InputPort port(nullptr, "in", spec);
  WindowedReceiver r(&port, spec);
  ASSERT_TRUE(r.Put(Ev(Token(1), Seconds(10))).ok());
  EXPECT_EQ(r.NextDeadline(), Timestamp::Seconds(60));
  r.OnTimeout(Timestamp::Seconds(60));
  ASSERT_TRUE(r.HasWindow());
  EXPECT_TRUE(r.Get()->closed_by_timeout);
}

TEST(WindowedReceiverTest, FlushDrainsPartials) {
  InputPort port(nullptr, "in", WindowSpec::Tuples(5, 5));
  WindowedReceiver r(&port, port.spec());
  ASSERT_TRUE(r.Put(Ev(Token(1), 1)).ok());
  r.Flush();
  ASSERT_TRUE(r.HasWindow());
  EXPECT_EQ(r.Get()->size(), 1u);
}

TEST(WindowedReceiverTest, DrainExpiredPassesThrough) {
  InputPort port(nullptr, "in", WindowSpec::Tuples(2, 1));
  WindowedReceiver r(&port, port.spec());
  ASSERT_TRUE(r.Put(Ev(Token(1), 1)).ok());
  ASSERT_TRUE(r.Put(Ev(Token(2), 2)).ok());
  ASSERT_TRUE(r.Put(Ev(Token(3), 3)).ok());
  EXPECT_EQ(r.DrainExpired().size(), 2u);
}

TEST(TMWindowedReceiverTest, ProducedWindowsGoToCallbackNotLocally) {
  InputPort port(nullptr, "in", WindowSpec::Tuples(2, 1));
  std::vector<Window> routed;
  TMWindowedReceiver r(&port, port.spec(),
                       [&](TMWindowedReceiver* self, Window w) {
                         EXPECT_EQ(self, &r);
                         routed.push_back(std::move(w));
                       });
  ASSERT_TRUE(r.Put(Ev(Token(1), 1)).ok());
  ASSERT_TRUE(r.Put(Ev(Token(2), 2)).ok());
  ASSERT_EQ(routed.size(), 1u);
  // The receiver's own buffer stays empty until the director delivers.
  EXPECT_FALSE(r.HasWindow());
  EXPECT_EQ(r.ReadyWindowCount(), 0u);
}

TEST(TMWindowedReceiverTest, DeliverBufferedFeedsGet) {
  InputPort port(nullptr, "in", WindowSpec::SingleEvent());
  std::vector<Window> routed;
  TMWindowedReceiver r(&port, port.spec(),
                       [&](TMWindowedReceiver*, Window w) {
                         routed.push_back(std::move(w));
                       });
  ASSERT_TRUE(r.Put(Ev(Token(5), 1)).ok());
  ASSERT_EQ(routed.size(), 1u);
  r.DeliverBuffered(std::move(routed[0]));
  ASSERT_TRUE(r.HasWindow());
  EXPECT_EQ(r.Get()->events[0].token.AsInt(), 5);
  EXPECT_FALSE(r.HasWindow());
}

TEST(TMWindowedReceiverTest, TimeoutWindowsAlsoRouted) {
  WindowSpec spec = WindowSpec::Time(Seconds(60), Seconds(60));
  InputPort port(nullptr, "in", spec);
  std::vector<Window> routed;
  TMWindowedReceiver r(&port, spec, [&](TMWindowedReceiver*, Window w) {
    routed.push_back(std::move(w));
  });
  ASSERT_TRUE(r.Put(Ev(Token(1), Seconds(5))).ok());
  r.OnTimeout(Timestamp::Seconds(60));
  ASSERT_EQ(routed.size(), 1u);
  EXPECT_TRUE(routed[0].closed_by_timeout);
}

}  // namespace
}  // namespace cwf

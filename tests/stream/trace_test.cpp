#include <gtest/gtest.h>

#include <cstdio>

#include <fstream>
#include <cstdio>

#include "stream/trace.h"
#include "test_util.h"

namespace cwf {
namespace {

using testutil::Rec;

TEST(TraceTest, AddAndQuery) {
  Trace t;
  EXPECT_TRUE(t.empty());
  t.Add(Timestamp::Seconds(2), Token(2));
  t.Add(Timestamp::Seconds(1), Token(1));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.EndTime(), Timestamp::Seconds(1));  // last appended
  t.Sort();
  EXPECT_EQ(t[0].token.AsInt(), 1);
  EXPECT_EQ(t.EndTime(), Timestamp::Seconds(2));
}

TEST(TraceTest, SortIsStable) {
  Trace t;
  t.Add(Timestamp::Seconds(1), Token(1));
  t.Add(Timestamp::Seconds(1), Token(2));
  t.Add(Timestamp::Seconds(1), Token(3));
  t.Sort();
  EXPECT_EQ(t[0].token.AsInt(), 1);
  EXPECT_EQ(t[1].token.AsInt(), 2);
  EXPECT_EQ(t[2].token.AsInt(), 3);
}

TEST(TraceTest, CountInRangeHalfOpen) {
  Trace t;
  for (int i = 0; i < 10; ++i) {
    t.Add(Timestamp::Seconds(i), Token(i));
  }
  EXPECT_EQ(t.CountInRange(Timestamp::Seconds(2), Timestamp::Seconds(5)), 3u);
  EXPECT_EQ(t.CountInRange(Timestamp::Seconds(0), Timestamp::Seconds(10)),
            10u);
  EXPECT_EQ(t.CountInRange(Timestamp::Seconds(5), Timestamp::Seconds(5)), 0u);
}

TEST(TraceTest, SaveLoadRoundTripRecords) {
  Trace t;
  t.Add(Timestamp::Seconds(1),
        Rec({{"car", 7}, {"speed", 55.25}, {"name", "a;b=c\\d"},
             {"ok", true}, {"nothing", Value()}}));
  t.Add(Timestamp::Seconds(2), Rec({{"car", 8}}));
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.tsv";
  ASSERT_TRUE(t.SaveToFile(path).ok());
  auto loaded = Trace::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].arrival, Timestamp::Seconds(1));
  const Token& tok = (*loaded)[0].token;
  EXPECT_EQ(tok.Field("car").AsInt(), 7);
  EXPECT_DOUBLE_EQ(tok.Field("speed").AsDouble(), 55.25);
  EXPECT_EQ(tok.Field("name").AsString(), "a;b=c\\d");
  EXPECT_TRUE(tok.Field("ok").AsBool());
  EXPECT_TRUE(tok.Field("nothing").is_null());
  std::remove(path.c_str());
}

TEST(TraceTest, SaveLoadScalarTokens) {
  Trace t;
  t.Add(Timestamp::Seconds(1), Token(42));
  const std::string path = ::testing::TempDir() + "/trace_scalar.tsv";
  ASSERT_TRUE(t.SaveToFile(path).ok());
  auto loaded = Trace::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  // Scalars round-trip as single-field records.
  EXPECT_EQ((*loaded)[0].token.Field("value").AsInt(), 42);
  std::remove(path.c_str());
}

TEST(TraceTest, LoadMissingFileFails) {
  EXPECT_EQ(Trace::LoadFromFile("/nonexistent/xyz.tsv").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace cwf

namespace cwf {
namespace {

TEST(TraceTest, LoadRejectsMalformedLines) {
  const std::string path = ::testing::TempDir() + "/bad_trace.tsv";
  {
    std::ofstream out(path);
    out << "notanumber_no_tab\n";
  }
  EXPECT_FALSE(Trace::LoadFromFile(path).ok());
  {
    std::ofstream out(path);
    out << "100\tfield_without_equals\n";
  }
  EXPECT_FALSE(Trace::LoadFromFile(path).ok());
  {
    std::ofstream out(path);
    out << "100\tv=q:bogus_tag\n";
  }
  EXPECT_FALSE(Trace::LoadFromFile(path).ok());
  std::remove(path.c_str());
}

TEST(TraceTest, EmptyFileLoadsEmptyTrace) {
  const std::string path = ::testing::TempDir() + "/empty_trace.tsv";
  { std::ofstream out(path); }
  auto t = Trace::LoadFromFile(path);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cwf

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <thread>

#include "actors/library.h"
#include "directors/pncwf_director.h"
#include "stream/stream_source.h"
#include "stream/tcp_listener.h"

namespace cwf {
namespace {

int ConnectTo(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  CWF_CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  CWF_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
            0);
  return fd;
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    CWF_CHECK(n > 0);
    sent += static_cast<size_t>(n);
  }
}

void WaitFor(const std::function<bool()>& cond, int timeout_ms = 3000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (cond()) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(TcpListenerTest, ParsesLinesIntoChannel) {
  auto channel = std::make_shared<PushChannel>();
  RealClock clock;
  TcpLineListener listener(channel, &clock);
  ASSERT_TRUE(listener.Start(0).ok());
  ASSERT_GT(listener.port(), 0);

  const int fd = ConnectTo(listener.port());
  SendAll(fd, "car=i:7;speed=d:55.5\nvalue=i:42\n");
  WaitFor([&] { return listener.tuples_received() >= 2; });
  ::close(fd);

  EXPECT_EQ(listener.tuples_received(), 2u);
  EXPECT_EQ(listener.parse_errors(), 0u);
  auto batch = channel->PopArrived(Timestamp::Max());
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].token.Field("car").AsInt(), 7);
  EXPECT_DOUBLE_EQ(batch[0].token.Field("speed").AsDouble(), 55.5);
  EXPECT_EQ(batch[1].token.Field("value").AsInt(), 42);
  listener.Stop();
  EXPECT_TRUE(channel->closed());
}

TEST(TcpListenerTest, MalformedLinesCountedAndDropped) {
  auto channel = std::make_shared<PushChannel>();
  RealClock clock;
  TcpLineListener listener(channel, &clock);
  ASSERT_TRUE(listener.Start(0).ok());
  const int fd = ConnectTo(listener.port());
  SendAll(fd, "no_equals_sign\nok=i:1\n");
  WaitFor([&] { return listener.tuples_received() >= 1; });
  ::close(fd);
  EXPECT_EQ(listener.parse_errors(), 1u);
  EXPECT_EQ(listener.tuples_received(), 1u);
  listener.Stop();
}

TEST(TcpListenerTest, MultipleClientsAndPartialWrites) {
  auto channel = std::make_shared<PushChannel>();
  RealClock clock;
  TcpLineListener listener(channel, &clock);
  ASSERT_TRUE(listener.Start(0).ok());
  const int a = ConnectTo(listener.port());
  const int b = ConnectTo(listener.port());
  // A line split across two writes must reassemble.
  SendAll(a, "k=i:");
  SendAll(b, "k=i:2\n");
  SendAll(a, "1\n");
  WaitFor([&] { return listener.tuples_received() >= 2; });
  ::close(a);
  ::close(b);
  EXPECT_EQ(listener.tuples_received(), 2u);
  listener.Stop();
}

TEST(TcpListenerTest, StartTwiceRejected) {
  auto channel = std::make_shared<PushChannel>();
  RealClock clock;
  TcpLineListener listener(channel, &clock);
  ASSERT_TRUE(listener.Start(0).ok());
  EXPECT_EQ(listener.Start(0).code(), StatusCode::kFailedPrecondition);
  listener.Stop();
}

TEST(TcpListenerTest, EndToEndIntoThreadedWorkflow) {
  // Network client -> TcpLineListener -> StreamSourceActor -> map -> sink,
  // all live under the OS-thread PNCWF director.
  auto channel = std::make_shared<PushChannel>();
  RealClock clock;
  TcpLineListener listener(channel, &clock);
  ASSERT_TRUE(listener.Start(0).ok());

  Workflow wf("net");
  auto* src = wf.AddActor<StreamSourceActor>("src", channel);
  auto* map = wf.AddActor<MapActor>("map", [](const Token& t) {
    return Token(t.Field("v").AsInt() * 10);
  });
  auto* sink = wf.AddActor<CollectorSink>("sink");
  ASSERT_TRUE(wf.Connect(src->out(), map->in()).ok());
  ASSERT_TRUE(wf.Connect(map->out(), sink->in()).ok());

  PNCWFOptions opts;
  opts.mode = PNCWFMode::kOsThreads;
  PNCWFDirector d(opts);
  ASSERT_TRUE(d.Initialize(&wf, &clock, nullptr).ok());

  std::thread producer([&] {
    const int fd = ConnectTo(listener.port());
    for (int i = 1; i <= 5; ++i) {
      SendAll(fd, "v=i:" + std::to_string(i) + "\n");
    }
    ::close(fd);
    WaitFor([&] { return listener.tuples_received() >= 5; });
    listener.Stop();  // closes the channel -> workflow drains and exits
  });
  ASSERT_TRUE(d.Run(Timestamp::Max()).ok());
  producer.join();

  auto got = sink->TakeSnapshot();
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[4].token.AsInt(), 50);
}

TEST(TcpListenerTest, ByteByByteWritesReassembleLines) {
  // Regression: lines split at arbitrary buffer boundaries — including one
  // byte per segment — must reassemble exactly.
  auto channel = std::make_shared<PushChannel>();
  RealClock clock;
  TcpLineListener listener(channel, &clock);
  ASSERT_TRUE(listener.Start(0).ok());

  const int fd = ConnectTo(listener.port());
  const std::string wire = "a=i:1\nbb=i:22\nccc=i:333\n";
  for (char c : wire) {
    SendAll(fd, std::string(1, c));
  }
  WaitFor([&] { return listener.tuples_received() >= 3; });
  ::close(fd);
  EXPECT_EQ(listener.tuples_received(), 3u);
  EXPECT_EQ(listener.parse_errors(), 0u);
  auto batch = channel->PopArrived(Timestamp::Max());
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].token.Field("a").AsInt(), 1);
  EXPECT_EQ(batch[1].token.Field("bb").AsInt(), 22);
  EXPECT_EQ(batch[2].token.Field("ccc").AsInt(), 333);
  listener.Stop();
}

TEST(TcpListenerTest, FinalLineWithoutNewlineDeliveredAtEof) {
  // Regression: the historical listener silently dropped a trailing line
  // when the client closed without a final '\n'.
  auto channel = std::make_shared<PushChannel>();
  RealClock clock;
  TcpLineListener listener(channel, &clock);
  ASSERT_TRUE(listener.Start(0).ok());

  const int fd = ConnectTo(listener.port());
  SendAll(fd, "first=i:1\nlast=i:2");  // no trailing newline
  WaitFor([&] { return listener.tuples_received() >= 1; });
  EXPECT_EQ(listener.tuples_received(), 1u);
  ::close(fd);  // EOF must flush the unterminated tail
  WaitFor([&] { return listener.tuples_received() >= 2; });
  EXPECT_EQ(listener.tuples_received(), 2u);
  auto batch = channel->PopArrived(Timestamp::Max());
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[1].token.Field("last").AsInt(), 2);
  listener.Stop();
}

}  // namespace
}  // namespace cwf

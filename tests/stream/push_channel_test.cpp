#include <gtest/gtest.h>

#include <thread>

#include "core/clock.h"
#include "stream/stream_source.h"

namespace cwf {
namespace {

TEST(PushChannelTest, PopArrivedRespectsTime) {
  PushChannel ch;
  ch.Push(Token(1), Timestamp::Seconds(1));
  ch.Push(Token(2), Timestamp::Seconds(2));
  ch.Push(Token(3), Timestamp::Seconds(3));
  EXPECT_EQ(ch.Pending(), 3u);
  EXPECT_EQ(ch.NextArrival(), Timestamp::Seconds(1));
  auto batch = ch.PopArrived(Timestamp::Seconds(2));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].token.AsInt(), 1);
  EXPECT_EQ(ch.NextArrival(), Timestamp::Seconds(3));
}

TEST(PushChannelTest, MaxBatchLimitsDrain) {
  PushChannel ch;
  for (int i = 0; i < 5; ++i) {
    ch.Push(Token(i), Timestamp(0));
  }
  EXPECT_EQ(ch.PopArrived(Timestamp::Seconds(1), 2).size(), 2u);
  EXPECT_EQ(ch.Pending(), 3u);
}

TEST(PushChannelTest, EmptyChannelSentinels) {
  PushChannel ch;
  EXPECT_EQ(ch.NextArrival(), Timestamp::Max());
  EXPECT_TRUE(ch.PopArrived(Timestamp::Max()).empty());
}

TEST(PushChannelTest, CloseSemantics) {
  PushChannel ch;
  EXPECT_FALSE(ch.closed());
  ch.Close();
  EXPECT_TRUE(ch.closed());
}

TEST(PushChannelDeathTest, PushAfterCloseAborts) {
  PushChannel ch;
  ch.Close();
  EXPECT_DEATH(ch.Push(Token(1), Timestamp(0)), "closed channel");
}

TEST(PushChannelTest, PushTraceBulkLoads) {
  Trace t;
  t.Add(Timestamp::Seconds(1), Token(1));
  t.Add(Timestamp::Seconds(2), Token(2));
  PushChannel ch;
  ch.PushTrace(t);
  EXPECT_EQ(ch.Pending(), 2u);
}

TEST(PushChannelTest, WaitForDataWakesOnPush) {
  PushChannel ch;
  std::thread producer([&ch] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.Push(Token(1), Timestamp(0));
  });
  ch.WaitForData();
  EXPECT_GE(ch.Pending(), 1u);
  producer.join();
}

TEST(PushChannelTest, WaitForDataWakesOnClose) {
  PushChannel ch;
  std::thread closer([&ch] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.Close();
  });
  ch.WaitForData();
  EXPECT_TRUE(ch.closed());
  closer.join();
}

TEST(StreamSourceActorTest, PrefireTracksClockAndData) {
  auto ch = std::make_shared<PushChannel>();
  StreamSourceActor src("src", ch);
  ExecutionContext ctx;
  VirtualClock clock;
  ctx.clock = &clock;
  ASSERT_TRUE(src.Initialize(&ctx).ok());
  EXPECT_FALSE(src.Prefire().value());
  ch->Push(Token(1), Timestamp::Seconds(5));
  EXPECT_FALSE(src.Prefire().value());  // arrival in the future
  clock.AdvanceTo(Timestamp::Seconds(5));
  EXPECT_TRUE(src.Prefire().value());
}

TEST(StreamSourceActorTest, FireInjectsArrivedWithArrivalStamps) {
  auto ch = std::make_shared<PushChannel>();
  StreamSourceActor src("src", ch);
  ExecutionContext ctx;
  VirtualClock clock;
  ctx.clock = &clock;
  ASSERT_TRUE(src.Initialize(&ctx).ok());
  ch->Push(Token(1), Timestamp::Seconds(1));
  ch->Push(Token(2), Timestamp::Seconds(2));
  ch->Push(Token(3), Timestamp::Seconds(9));
  clock.AdvanceTo(Timestamp::Seconds(3));
  src.BeginFiring();
  ASSERT_TRUE(src.Fire().ok());
  auto out = src.TakePendingOutputs();
  ASSERT_EQ(out.size(), 2u);  // the t=9 tuple has not arrived yet
  EXPECT_EQ(out[0].external_timestamp.value(), Timestamp::Seconds(1));
  EXPECT_EQ(out[1].external_timestamp.value(), Timestamp::Seconds(2));
  EXPECT_EQ(src.injected(), 2u);
}

TEST(StreamSourceActorTest, ExhaustedOnlyWhenClosedAndDrained) {
  auto ch = std::make_shared<PushChannel>();
  StreamSourceActor src("src", ch);
  EXPECT_FALSE(src.Exhausted());  // open channel: more may come
  ch->Push(Token(1), Timestamp(0));
  ch->Close();
  EXPECT_FALSE(src.Exhausted());  // still has a queued tuple
  ch->PopArrived(Timestamp::Max());
  EXPECT_TRUE(src.Exhausted());
}

TEST(StreamSourceActorTest, IsSourceAndBatchLimit) {
  auto ch = std::make_shared<PushChannel>();
  StreamSourceActor src("src", ch, /*max_batch_per_firing=*/1);
  EXPECT_TRUE(src.IsSource());
  ExecutionContext ctx;
  VirtualClock clock;
  ctx.clock = &clock;
  ASSERT_TRUE(src.Initialize(&ctx).ok());
  ch->Push(Token(1), Timestamp(0));
  ch->Push(Token(2), Timestamp(0));
  src.BeginFiring();
  ASSERT_TRUE(src.Fire().ok());
  EXPECT_EQ(src.TakePendingOutputs().size(), 1u);  // capped batch
}

}  // namespace
}  // namespace cwf

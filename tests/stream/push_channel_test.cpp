#include <gtest/gtest.h>

#include <thread>

#include "core/clock.h"
#include "stream/stream_source.h"

namespace cwf {
namespace {

TEST(PushChannelTest, PopArrivedRespectsTime) {
  PushChannel ch;
  ch.Push(Token(1), Timestamp::Seconds(1));
  ch.Push(Token(2), Timestamp::Seconds(2));
  ch.Push(Token(3), Timestamp::Seconds(3));
  EXPECT_EQ(ch.Pending(), 3u);
  EXPECT_EQ(ch.NextArrival(), Timestamp::Seconds(1));
  auto batch = ch.PopArrived(Timestamp::Seconds(2));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].token.AsInt(), 1);
  EXPECT_EQ(ch.NextArrival(), Timestamp::Seconds(3));
}

TEST(PushChannelTest, MaxBatchLimitsDrain) {
  PushChannel ch;
  for (int i = 0; i < 5; ++i) {
    ch.Push(Token(i), Timestamp(0));
  }
  EXPECT_EQ(ch.PopArrived(Timestamp::Seconds(1), 2).size(), 2u);
  EXPECT_EQ(ch.Pending(), 3u);
}

TEST(PushChannelTest, EmptyChannelSentinels) {
  PushChannel ch;
  EXPECT_EQ(ch.NextArrival(), Timestamp::Max());
  EXPECT_TRUE(ch.PopArrived(Timestamp::Max()).empty());
}

TEST(PushChannelTest, CloseSemantics) {
  PushChannel ch;
  EXPECT_FALSE(ch.closed());
  ch.Close();
  EXPECT_TRUE(ch.closed());
}

TEST(PushChannelDeathTest, PushAfterCloseAborts) {
  PushChannel ch;
  ch.Close();
  EXPECT_DEATH(ch.Push(Token(1), Timestamp(0)), "closed channel");
}

TEST(PushChannelTest, PushTraceBulkLoads) {
  Trace t;
  t.Add(Timestamp::Seconds(1), Token(1));
  t.Add(Timestamp::Seconds(2), Token(2));
  PushChannel ch;
  ch.PushTrace(t);
  EXPECT_EQ(ch.Pending(), 2u);
}

TEST(PushChannelTest, WaitForDataWakesOnPush) {
  PushChannel ch;
  std::thread producer([&ch] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.Push(Token(1), Timestamp(0));
  });
  ch.WaitForData();
  EXPECT_GE(ch.Pending(), 1u);
  producer.join();
}

TEST(PushChannelTest, WaitForDataWakesOnClose) {
  PushChannel ch;
  std::thread closer([&ch] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.Close();
  });
  ch.WaitForData();
  EXPECT_TRUE(ch.closed());
  closer.join();
}

TEST(PushChannelTest, OfferRespectsCapacity) {
  PushChannel ch;
  ch.SetCapacity(2);
  EXPECT_EQ(ch.capacity(), 2u);
  EXPECT_EQ(ch.Offer(Token(1), Timestamp(0)), PushOutcome::kAccepted);
  EXPECT_EQ(ch.Offer(Token(2), Timestamp(0)), PushOutcome::kAccepted);
  EXPECT_EQ(ch.Offer(Token(3), Timestamp(0)), PushOutcome::kFull);
  EXPECT_EQ(ch.Pending(), 2u);
  ch.PopArrived(Timestamp::Max(), 1);
  EXPECT_EQ(ch.Offer(Token(3), Timestamp(0)), PushOutcome::kAccepted);
  ch.Close();
  EXPECT_EQ(ch.Offer(Token(4), Timestamp(0)), PushOutcome::kClosed);
}

TEST(PushChannelTest, UnboundedChannelNeverRefuses) {
  PushChannel ch;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(ch.Offer(Token(i), Timestamp(0)), PushOutcome::kAccepted);
  }
  EXPECT_EQ(ch.Pending(), 1000u);
}

TEST(PushChannelTest, TryPushBatchStopsAtCapacity) {
  PushChannel ch;
  ch.SetCapacity(3);
  std::vector<TraceEntry> entries;
  for (int i = 0; i < 5; ++i) {
    entries.push_back({Timestamp(i), Token(i)});
  }
  EXPECT_EQ(ch.TryPushBatch(entries), 3u);
  EXPECT_EQ(ch.Pending(), 3u);
  // Unaccepted entries keep their tokens (only accepted ones are moved).
  EXPECT_EQ(entries[3].token.AsInt(), 3);
  EXPECT_EQ(entries[4].token.AsInt(), 4);
  auto got = ch.PopArrived(Timestamp::Max());
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].token.AsInt(), 0);
  EXPECT_EQ(got[2].token.AsInt(), 2);
}

TEST(PushChannelTest, TryPushBatchOnClosedChannelAcceptsNothing) {
  PushChannel ch;
  ch.Close();
  std::vector<TraceEntry> entries;
  entries.push_back({Timestamp(0), Token(1)});
  EXPECT_EQ(ch.TryPushBatch(entries), 0u);
  EXPECT_EQ(entries[0].token.AsInt(), 1);  // untouched
}

TEST(PushChannelTest, SpaceCallbackFiresAtHalfCapacityAfterRefusal) {
  PushChannel ch;
  ch.SetCapacity(4);
  int fired = 0;
  ch.SetSpaceAvailableCallback([&] { ++fired; });
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(ch.Offer(Token(i), Timestamp(0)), PushOutcome::kAccepted);
  }
  // No refusal yet: draining must not signal.
  ch.PopArrived(Timestamp::Max(), 1);
  EXPECT_EQ(fired, 0);
  ASSERT_EQ(ch.Offer(Token(9), Timestamp(0)), PushOutcome::kAccepted);
  ASSERT_EQ(ch.Offer(Token(10), Timestamp(0)), PushOutcome::kFull);
  // Hysteresis: one pop leaves 3 > capacity/2 pending — still quiet.
  ch.PopArrived(Timestamp::Max(), 1);
  EXPECT_EQ(fired, 0);
  ch.PopArrived(Timestamp::Max(), 1);  // down to 2 == resume threshold
  EXPECT_EQ(fired, 1);
  // Signal is one-shot until the next refusal.
  ch.PopArrived(Timestamp::Max(), 1);
  EXPECT_EQ(fired, 1);
}

TEST(PushChannelTest, SpaceCallbackFiresOnClose) {
  PushChannel ch;
  ch.SetCapacity(1);
  int fired = 0;
  ch.SetSpaceAvailableCallback([&] { ++fired; });
  ASSERT_EQ(ch.Offer(Token(1), Timestamp(0)), PushOutcome::kAccepted);
  ASSERT_EQ(ch.Offer(Token(2), Timestamp(0)), PushOutcome::kFull);
  ch.Close();  // a paused producer must learn the channel is gone
  EXPECT_EQ(fired, 1);
}

TEST(PushChannelTest, CheckTokenIsNonFatal) {
  PushChannel ch;
  EXPECT_TRUE(ch.CheckToken(Token(1)).ok());  // no schema: everything passes
  RecordSchema schema;
  schema.Int("car");
  ch.SetExpectedSchema(TokenType::Record(schema), "typed");
  EXPECT_FALSE(ch.CheckToken(Token(1)).ok());
  EXPECT_FALSE(ch.expected_schema().is_unknown());
}

TEST(StreamSourceActorTest, PrefireTracksClockAndData) {
  auto ch = std::make_shared<PushChannel>();
  StreamSourceActor src("src", ch);
  ExecutionContext ctx;
  VirtualClock clock;
  ctx.clock = &clock;
  ASSERT_TRUE(src.Initialize(&ctx).ok());
  EXPECT_FALSE(src.Prefire().value());
  ch->Push(Token(1), Timestamp::Seconds(5));
  EXPECT_FALSE(src.Prefire().value());  // arrival in the future
  clock.AdvanceTo(Timestamp::Seconds(5));
  EXPECT_TRUE(src.Prefire().value());
}

TEST(StreamSourceActorTest, FireInjectsArrivedWithArrivalStamps) {
  auto ch = std::make_shared<PushChannel>();
  StreamSourceActor src("src", ch);
  ExecutionContext ctx;
  VirtualClock clock;
  ctx.clock = &clock;
  ASSERT_TRUE(src.Initialize(&ctx).ok());
  ch->Push(Token(1), Timestamp::Seconds(1));
  ch->Push(Token(2), Timestamp::Seconds(2));
  ch->Push(Token(3), Timestamp::Seconds(9));
  clock.AdvanceTo(Timestamp::Seconds(3));
  src.BeginFiring();
  ASSERT_TRUE(src.Fire().ok());
  auto out = src.TakePendingOutputs();
  ASSERT_EQ(out.size(), 2u);  // the t=9 tuple has not arrived yet
  EXPECT_EQ(out[0].external_timestamp.value(), Timestamp::Seconds(1));
  EXPECT_EQ(out[1].external_timestamp.value(), Timestamp::Seconds(2));
  EXPECT_EQ(src.injected(), 2u);
}

TEST(StreamSourceActorTest, ExhaustedOnlyWhenClosedAndDrained) {
  auto ch = std::make_shared<PushChannel>();
  StreamSourceActor src("src", ch);
  EXPECT_FALSE(src.Exhausted());  // open channel: more may come
  ch->Push(Token(1), Timestamp(0));
  ch->Close();
  EXPECT_FALSE(src.Exhausted());  // still has a queued tuple
  ch->PopArrived(Timestamp::Max());
  EXPECT_TRUE(src.Exhausted());
}

TEST(StreamSourceActorTest, IsSourceAndBatchLimit) {
  auto ch = std::make_shared<PushChannel>();
  StreamSourceActor src("src", ch, /*max_batch_per_firing=*/1);
  EXPECT_TRUE(src.IsSource());
  ExecutionContext ctx;
  VirtualClock clock;
  ctx.clock = &clock;
  ASSERT_TRUE(src.Initialize(&ctx).ok());
  ch->Push(Token(1), Timestamp(0));
  ch->Push(Token(2), Timestamp(0));
  src.BeginFiring();
  ASSERT_TRUE(src.Fire().ok());
  EXPECT_EQ(src.TakePendingOutputs().size(), 1u);  // capped batch
}

}  // namespace
}  // namespace cwf

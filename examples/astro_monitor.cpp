// AstroShelf-style sky monitoring (the paper's scientific-domain
// application).
//
// Telescopes push brightness readings for sky objects; the workflow
//   * keeps a sliding window of the last 4 readings per object and flags
//     transient brightening events (novae candidates),
//   * wave-synchronizes the per-filter magnitudes derived from one reading
//     so annotations are emitted only when all bands are computed,
//   * records candidates into the embedded store for collaborating
//     scientists to query.
// The detection pipeline lives in a DDF sub-workflow (two-level hierarchy),
// mirroring the paper's application structure.

#include <cstdio>

#include "actors/library.h"
#include "core/composite_actor.h"
#include "db/database.h"
#include "directors/ddf_director.h"
#include "directors/scwf_director.h"
#include "stafilos/edf_scheduler.h"
#include "stream/stream_source.h"

using namespace cwf;

namespace {

Token Reading(int64_t object, double brightness, int64_t t) {
  auto rec = std::make_shared<Record>();
  rec->Set("object", Value(object));
  rec->Set("brightness", Value(brightness));
  rec->Set("t", Value(t));
  return Token(RecordPtr(std::move(rec)));
}

}  // namespace

int main() {
  // Side store for confirmed candidates.
  db::Database store;
  db::Table* candidates =
      store
          .CreateTable("candidates",
                       db::Schema({{"object", db::ColumnType::kInt64},
                                   {"t", db::ColumnType::kInt64},
                                   {"ratio", db::ColumnType::kDouble}}))
          .value();
  CWF_CHECK(candidates->CreateIndex("by_object", {"object"}).ok());

  Workflow wf("astro");
  auto telescope = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("telescope", telescope);

  // Sub-workflow: transient detection under a DDF director.
  auto* detection =
      wf.AddActor<CompositeActor>("detection", std::make_unique<DDFDirector>());
  auto* spike = detection->inner()->AddActor<WindowFnActor>(
      "spike_detector",
      WindowSpec::Tuples(4, 1).GroupBy({"object"}),
      [](const Window& w, std::vector<Token>* out) {
        // Brightening: newest reading at least 3x the window's baseline.
        double baseline = 0;
        for (size_t i = 0; i + 1 < w.size(); ++i) {
          baseline += w.events[i].token.Field("brightness").AsDouble();
        }
        baseline /= static_cast<double>(w.size() - 1);
        const double latest =
            w.back().token.Field("brightness").AsDouble();
        if (latest >= 3 * baseline) {
          auto rec = std::make_shared<Record>();
          rec->Set("object", w.back().token.Field("object"));
          rec->Set("t", w.back().token.Field("t"));
          rec->Set("ratio", Value(latest / baseline));
          out->push_back(Token(RecordPtr(std::move(rec))));
        }
        return Status::OK();
      });
  // Inner channel schemas, declared before the ports are exposed so the
  // composite boundary inherits them.
  RecordSchema reading;
  reading.Int("object").Double("brightness").Int("t");
  RecordSchema candidate;
  candidate.Int("object").Int("t").Double("ratio");
  src->out()->set_schema(TokenType::Record(reading));
  spike->in()->set_required_schema(TokenType::Record(reading));
  spike->out()->set_schema(TokenType::Record(candidate));
  detection->ExposeInput("in", spike->in());
  detection->ExposeOutput("out", spike->out());

  // Derive per-band magnitudes (three bands per candidate -> one wave).
  auto* bands = wf.AddActor<FlatMapActor>("derive_bands", [](const Token& t) {
    std::vector<Token> out;
    for (const char* band : {"g", "r", "i"}) {
      auto rec = std::make_shared<Record>();
      rec->Set("object", t.Field("object"));
      rec->Set("t", t.Field("t"));
      rec->Set("ratio", t.Field("ratio"));
      rec->Set("band", Value(band));
      out.push_back(Token(RecordPtr(std::move(rec))));
    }
    return out;
  });

  // Wave synchronization: annotate only when all bands of one candidate
  // (one wave) are present.
  auto* annotate = wf.AddActor<WindowFnActor>(
      "annotate", WindowSpec::Waves(1, 1),
      [candidates](const Window& w, std::vector<Token>* out) {
        CWF_CHECK(!w.empty());
        const Token& first = w.events[0].token;
        CWF_RETURN_NOT_OK(candidates
                              ->Upsert({"object", "t"},
                                       {first.Field("object"),
                                        first.Field("t"),
                                        first.Field("ratio")})
                              .status());
        auto rec = std::make_shared<Record>();
        rec->Set("object", first.Field("object"));
        rec->Set("bands", Value(static_cast<int64_t>(w.size())));
        out->push_back(Token(RecordPtr(std::move(rec))));
        return Status::OK();
      });

  auto* alerts = wf.AddActor<CollectorSink>("alerts");
  RecordSchema banded = candidate;
  banded.Str("band");
  bands->in()->set_required_schema(TokenType::Record(candidate));
  bands->out()->set_schema(TokenType::Record(banded));
  annotate->in()->set_required_schema(TokenType::Record(banded));
  RecordSchema annotated;
  annotated.Int("object").Int("bands");
  annotate->out()->set_schema(TokenType::Record(annotated));
  alerts->in()->set_required_schema(TokenType::Record(annotated));
  CWF_CHECK(wf.Connect(src->out(), detection->GetInputPort("in")).ok());
  CWF_CHECK(wf.Connect(detection->GetOutputPort("out"), bands->in()).ok());
  CWF_CHECK(wf.Connect(bands->out(), annotate->in()).ok());
  CWF_CHECK(wf.Connect(annotate->out(), alerts->in()).ok());

  // Sky survey: 5 objects observed every 10s for 5 minutes; object 3 goes
  // nova at t=150.
  for (int t = 0; t < 300; t += 10) {
    for (int64_t object = 0; object < 5; ++object) {
      double brightness = 10.0 + static_cast<double>(object);
      if (object == 3 && t >= 150 && t < 180) {
        brightness *= 5;  // transient!
      }
      telescope->Push(Reading(object, brightness, t),
                      Timestamp::Seconds(t + 0.1 * static_cast<double>(object)));
    }
  }
  telescope->Close();

  VirtualClock clock;
  CostModel cost_model;
  SCWFDirector director(std::make_unique<EDFScheduler>());
  CWF_CHECK(director.Initialize(&wf, &clock, &cost_model).ok());
  CWF_CHECK(director.Run(Timestamp::Max()).ok());

  std::printf("annotations emitted: %zu\n", alerts->count());
  auto rows = candidates->Select(db::True()).value();
  std::printf("candidates recorded in the store: %zu\n", rows.size());
  for (const auto& row : rows) {
    std::printf("  object %lld brightened %.1fx at t=%llds\n",
                static_cast<long long>(row[0].AsInt()), row[2].AsDouble(),
                static_cast<long long>(row[1].AsInt()));
  }
  return 0;
}

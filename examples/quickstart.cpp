// Quickstart: a minimal continuous workflow.
//
// Builds a three-actor workflow — a push source, a windowed average, and a
// sink — and runs it under the scheduled (SCWF) director with the QBS
// policy. Demonstrates the core public API: Workflow, actors, window
// semantics on input ports, push channels, directors and schedulers.
//
// The graph is mirrored in the static-analyzer catalog ("quickstart" in
// src/analysis/builtin_graphs.cpp): `build/tools/cwf_analyze quickstart`
// lints it without running it, and Director::Initialize runs the same
// analysis before execution.

#include <cstdio>

#include "actors/library.h"
#include "directors/scwf_director.h"
#include "stafilos/qbs_scheduler.h"
#include "stream/stream_source.h"

using namespace cwf;

int main() {
  // 1. The workflow graph.
  Workflow wf("quickstart");

  // A source actor fed by a push channel (external data enters here).
  auto feed = std::make_shared<PushChannel>();
  auto* source = wf.AddActor<StreamSourceActor>("readings", feed);

  // A windowed actor: average over tumbling windows of 5 readings.
  auto* averager = wf.AddActor<WindowFnActor>(
      "avg5", WindowSpec::Tuples(5, 5).DeleteUsedEvents(true),
      [](const Window& w, std::vector<Token>* out) {
        double sum = 0;
        for (const CWEvent& e : w.events) {
          sum += e.token.AsDouble();
        }
        out->push_back(Token(sum / static_cast<double>(w.size())));
        return Status::OK();
      });

  // A sink that remembers everything (with response-time metadata).
  auto* sink = wf.AddActor<CollectorSink>("sink");

  // Channel schemas: verified statically (cwf_analyze --schemas) and
  // enforced per-token at runtime in debug builds.
  source->out()->set_schema(TokenType::Double());
  averager->out()->set_schema(TokenType::Double());
  sink->in()->set_required_schema(TokenType::Double());

  CWF_CHECK(wf.Connect(source->out(), averager->in()).ok());
  CWF_CHECK(wf.Connect(averager->out(), sink->in()).ok());

  // 2. External data: 20 sensor readings, one per second.
  for (int i = 0; i < 20; ++i) {
    feed->Push(Token(20.0 + 0.5 * i), Timestamp::Seconds(i));
  }
  feed->Close();

  // 3. Execute under the scheduled director with the QBS policy on a
  //    virtual clock (deterministic, instant).
  VirtualClock clock;
  CostModel cost_model;  // default modeled costs
  SCWFDirector director(std::make_unique<QBSScheduler>());
  CWF_CHECK(director.Initialize(&wf, &clock, &cost_model).ok());
  CWF_CHECK(director.Run(Timestamp::Max()).ok());
  CWF_CHECK(director.Wrapup().ok());

  // 4. Results.
  std::printf("window averages:\n");
  for (const auto& r : sink->TakeSnapshot()) {
    std::printf("  avg=%.2f  (answering a reading that arrived at %s, "
                "response time %.3fs)\n",
                r.token.AsDouble(), r.event_timestamp.ToString().c_str(),
                static_cast<double>(r.completed_at - r.event_timestamp) / 1e6);
  }
  std::printf("total firings: %llu over %llu director iterations\n",
              static_cast<unsigned long long>(director.total_firings()),
              static_cast<unsigned long long>(director.director_iterations()));
  return 0;
}

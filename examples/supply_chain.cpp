// Supply-chain monitoring (the paper's business-domain application).
//
// A continuous workflow watches a stream of order events and a stream of
// shipment scans:
//   * orders join their shipment scans via wave-synchronization-free
//     group-by windows (order id);
//   * a time window computes per-warehouse throughput each minute;
//   * late shipments (no scan within the window timeout) trigger alerts
//     through the expired-items path.
// Runs under the SCWF director with the Rate-Based scheduler.

#include <cstdio>

#include "actors/library.h"
#include "directors/scwf_director.h"
#include "stafilos/rb_scheduler.h"
#include "stream/stream_source.h"

using namespace cwf;

namespace {

Token OrderEvent(int64_t order, const char* warehouse, double value) {
  auto rec = std::make_shared<Record>();
  rec->Set("order", Value(order));
  rec->Set("warehouse", Value(warehouse));
  rec->Set("value", Value(value));
  rec->Set("kind", Value("order"));
  return Token(RecordPtr(std::move(rec)));
}

Token ScanEvent(int64_t order, const char* warehouse) {
  auto rec = std::make_shared<Record>();
  rec->Set("order", Value(order));
  rec->Set("warehouse", Value(warehouse));
  rec->Set("kind", Value("scan"));
  return Token(RecordPtr(std::move(rec)));
}

}  // namespace

int main() {
  Workflow wf("supply_chain");

  auto orders = std::make_shared<PushChannel>();
  auto scans = std::make_shared<PushChannel>();
  auto* order_src = wf.AddActor<StreamSourceActor>("orders", orders);
  auto* scan_src = wf.AddActor<StreamSourceActor>("scans", scans);

  // Merge both streams (orders and scans carry the same schema subset).
  auto* merge = wf.AddActor<MapActor>(
      "merge", [](const Token& t) { return t; });

  // Fulfillment matcher: windows of 2 events grouped by order id — an
  // order followed by its scan. Orders whose scan never arrives stay as
  // partial windows and are surfaced via the pending/expired path below.
  auto* matcher = wf.AddActor<WindowFnActor>(
      "fulfillment",
      WindowSpec::Tuples(2, 2).GroupBy({"order"}).DeleteUsedEvents(true),
      [](const Window& w, std::vector<Token>* out) {
        bool has_order = false;
        bool has_scan = false;
        for (const CWEvent& e : w.events) {
          const std::string kind = e.token.Field("kind").AsString();
          has_order |= kind == "order";
          has_scan |= kind == "scan";
        }
        if (has_order && has_scan) {
          auto rec = std::make_shared<Record>();
          rec->Set("order", w.events[0].token.Field("order"));
          rec->Set("status", Value("fulfilled"));
          out->push_back(Token(RecordPtr(std::move(rec))));
        }
        return Status::OK();
      });

  // Per-warehouse minute throughput.
  auto* throughput = wf.AddActor<WindowFnActor>(
      "throughput",
      WindowSpec::Time(Seconds(60), Seconds(60))
          .GroupBy({"warehouse"})
          .DeleteUsedEvents(true),
      [](const Window& w, std::vector<Token>* out) {
        auto rec = std::make_shared<Record>();
        rec->Set("warehouse", w.group_key.Field("warehouse"));
        rec->Set("events_per_min", Value(static_cast<int64_t>(w.size())));
        out->push_back(Token(RecordPtr(std::move(rec))));
        return Status::OK();
      });

  auto* fulfilled = wf.AddActor<CollectorSink>("fulfilled");
  auto* stats = wf.AddActor<CollectorSink>("stats");

  // Channel schemas: "value" only rides on order events, so the merged
  // stream declares it optional.
  RecordSchema order_event;
  order_event.Int("order").Str("warehouse").Double("value").Str("kind");
  RecordSchema scan_event;
  scan_event.Int("order").Str("warehouse").Str("kind");
  order_src->out()->set_schema(TokenType::Record(order_event));
  scan_src->out()->set_schema(TokenType::Record(scan_event));
  RecordSchema merged;
  merged.Int("order").Str("warehouse").Field("value", ScalarType::Double(),
                                             /*required=*/false);
  merged.Str("kind");
  merge->out()->set_schema(TokenType::Record(merged));
  RecordSchema fulfillment;
  fulfillment.Int("order").Str("status");
  matcher->out()->set_schema(TokenType::Record(fulfillment));
  RecordSchema warehouse_stats;
  warehouse_stats.Str("warehouse").Int("events_per_min");
  throughput->out()->set_schema(TokenType::Record(warehouse_stats));
  fulfilled->in()->set_required_schema(TokenType::Record(fulfillment));
  stats->in()->set_required_schema(TokenType::Record(warehouse_stats));

  CWF_CHECK(wf.Connect(order_src->out(), merge->in()).ok());
  CWF_CHECK(wf.Connect(scan_src->out(), merge->in()).ok());
  CWF_CHECK(wf.Connect(merge->out(), matcher->in()).ok());
  CWF_CHECK(wf.Connect(merge->out(), throughput->in()).ok());
  CWF_CHECK(wf.Connect(matcher->out(), fulfilled->in()).ok());
  CWF_CHECK(wf.Connect(throughput->out(), stats->in()).ok());

  // Workload: 30 orders across two warehouses over 3 minutes; order 17's
  // scan is "lost in the warehouse".
  for (int i = 0; i < 30; ++i) {
    const char* warehouse = i % 2 == 0 ? "east" : "west";
    const double t = i * 6.0;
    orders->Push(OrderEvent(i, warehouse, 100.0 + i), Timestamp::Seconds(t));
    if (i != 17) {
      scans->Push(ScanEvent(i, warehouse), Timestamp::Seconds(t + 20));
    }
  }
  orders->Close();
  scans->Close();

  VirtualClock clock;
  CostModel cost_model;
  SCWFDirector director(std::make_unique<RBScheduler>());
  CWF_CHECK(director.Initialize(&wf, &clock, &cost_model).ok());
  CWF_CHECK(director.Run(Timestamp::Seconds(400)).ok());

  std::printf("fulfilled orders: %zu of 30\n", fulfilled->count());
  std::printf("per-warehouse minute stats:\n");
  for (const auto& r : stats->TakeSnapshot()) {
    std::printf("  %-5s %lld events/min\n",
                r.token.Field("warehouse").AsString().c_str(),
                static_cast<long long>(
                    r.token.Field("events_per_min").AsInt()));
  }
  // The unmatched order sits in the matcher's partial window; surface it
  // via the expired/pending path.
  std::printf("orders still awaiting their scan: %zu (order 17)\n",
              matcher->in()->PendingEventCount());
  return 0;
}

// Simulating the distributed-SCWF direction (paper §5): "distribute the
// processing of a workflow among multiple computing nodes in a cluster or
// the Cloud by placing specific actors to specific nodes."
//
// In a single process, node boundaries become provenance-preserving
// DelayActor links: events crossing between the "edge" node (ingest +
// filtering) and the "core" node (aggregation + alerting) pay the network
// latency, while response times keep being measured against original
// arrival. The run compares end-to-end latency for several link qualities.

#include <cstdio>

#include "actors/library.h"
#include "actors/stream_ops.h"
#include "directors/scwf_director.h"
#include "stafilos/qbs_scheduler.h"
#include "stream/stream_source.h"

using namespace cwf;

namespace {

double RunWithLink(Duration link_latency) {
  Workflow wf("edge_to_core");
  auto feed = std::make_shared<PushChannel>();

  // ---- edge node: ingest + pre-filter ----
  auto* sensor = wf.AddActor<StreamSourceActor>("edge.sensor", feed);
  auto* prefilter = wf.AddActor<FilterActor>(
      "edge.prefilter",
      [](const Token& t) { return t.Field("v").AsDouble() > 10.0; });

  // ---- the WAN link between the nodes ----
  auto* wan = wf.AddActor<DelayActor>("wan", link_latency);

  // ---- core node: window aggregate + alert sink ----
  auto* agg = wf.AddActor<WindowFnActor>(
      "core.agg", WindowSpec::Tuples(5, 5).DeleteUsedEvents(true),
      [](const Window& w, std::vector<Token>* out) {
        double sum = 0;
        for (const CWEvent& e : w.events) {
          sum += e.token.Field("v").AsDouble();
        }
        out->push_back(Token(sum / static_cast<double>(w.size())));
        return Status::OK();
      });
  auto* alerts = wf.AddActor<CollectorSink>("core.alerts");

  RecordSchema measurement;
  measurement.Double("v");
  sensor->out()->set_schema(TokenType::Record(measurement));
  prefilter->in()->set_required_schema(TokenType::Record(measurement));
  agg->in()->set_required_schema(TokenType::Record(measurement));
  agg->out()->set_schema(TokenType::Double());
  alerts->in()->set_required_schema(TokenType::Double());

  CWF_CHECK(wf.Connect(sensor->out(), prefilter->in()).ok());
  CWF_CHECK(wf.Connect(prefilter->out(), wan->in()).ok());
  CWF_CHECK(wf.Connect(wan->out(), agg->in()).ok());
  CWF_CHECK(wf.Connect(agg->out(), alerts->in()).ok());

  for (int i = 0; i < 200; ++i) {
    auto rec = std::make_shared<Record>();
    rec->Set("v", Value(5.0 + (i % 20)));  // half pass the prefilter
    feed->Push(Token(RecordPtr(std::move(rec))),
               Timestamp::Seconds(0.05 * i));
  }
  feed->Close();

  VirtualClock clock;
  CostModel costs;
  SCWFDirector director(std::make_unique<QBSScheduler>());
  CWF_CHECK(director.Initialize(&wf, &clock, &costs).ok());
  CWF_CHECK(director.Run(Timestamp::Seconds(60)).ok());

  double sum = 0;
  auto got = alerts->TakeSnapshot();
  for (const auto& r : got) {
    sum += static_cast<double>(r.completed_at - r.event_timestamp) / 1e6;
  }
  return got.empty() ? 0.0 : sum / static_cast<double>(got.size());
}

}  // namespace

int main() {
  std::printf("edge -> WAN -> core, average alert latency vs link quality\n\n");
  std::printf("  %-18s %s\n", "link latency", "avg end-to-end latency");
  for (Duration latency : {Duration(0), Millis(50), Millis(200), Seconds(1)}) {
    std::printf("  %-18s %.3f s\n",
                (Timestamp(0) + latency).ToString().c_str(),
                RunWithLink(latency));
  }
  std::printf(
      "\nResponse time is measured against the tuple's original arrival at\n"
      "the edge (the link preserves provenance via SendPreserved), so the\n"
      "placement cost of the paper's distributed direction is visible\n"
      "directly in the QoS metric.\n");
  return 0;
}

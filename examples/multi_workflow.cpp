// Multi-workflow mode (paper §5): two continuous workflows time-share one
// node under the two-level scheduling design — per-workflow SCWF directors
// with their own local schedulers below, a global capacity-distributing
// scheduler above, and the ConnectionController as the external control
// plane.

#include <cstdio>

#include "actors/library.h"
#include "directors/scwf_director.h"
#include "multi/connection_controller.h"
#include "stafilos/qbs_scheduler.h"
#include "stafilos/rr_scheduler.h"
#include "stream/stream_source.h"

using namespace cwf;

namespace {

struct App {
  std::unique_ptr<Manager> manager;
  CollectorSink* sink;
};

App BuildApp(const std::string& name,
             std::unique_ptr<AbstractScheduler> scheduler, int tuples) {
  auto wf = std::make_unique<Workflow>(name);
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf->AddActor<StreamSourceActor>("src", feed);
  auto* work = wf->AddActor<MapActor>(
      "work", [](const Token& t) { return Token(t.AsInt() * 2); });
  auto* sink = wf->AddActor<CollectorSink>("sink");
  src->out()->set_schema(TokenType::Int());
  work->out()->set_schema(TokenType::Int());
  sink->in()->set_required_schema(TokenType::Int());
  CWF_CHECK(wf->Connect(src->out(), work->in()).ok());
  CWF_CHECK(wf->Connect(work->out(), sink->in()).ok());
  for (int i = 0; i < tuples; ++i) {
    feed->Push(Token(i), Timestamp::Seconds(0.01 * i));
  }
  feed->Close();
  auto manager = std::make_unique<Manager>(
      name, std::move(wf),
      std::make_unique<SCWFDirector>(std::move(scheduler)));
  return {std::move(manager), sink};
}

}  // namespace

int main() {
  VirtualClock clock;
  CostModel cost_model;
  cost_model.SetDefault({2000, 50, 50});

  App trading = BuildApp("trading", std::make_unique<QBSScheduler>(), 400);
  App logistics = BuildApp("logistics", std::make_unique<RRScheduler>(), 400);
  CWF_CHECK(trading.manager->Initialize(&clock, &cost_model).ok());
  CWF_CHECK(logistics.manager->Initialize(&clock, &cost_model).ok());

  ConnectionController controller;
  Manager* trading_mgr = trading.manager.get();
  Manager* logistics_mgr = logistics.manager.get();
  CWF_CHECK(controller.Register(std::move(trading.manager)).ok());
  CWF_CHECK(controller.Register(std::move(logistics.manager)).ok());

  // Weighted CPU capacity: trading gets 3x the quanta.
  GlobalSchedulerOptions opt;
  opt.policy = CapacityPolicy::kWeightedShare;
  opt.base_quantum = 20000;
  GlobalScheduler global(opt);
  global.AddManager(trading_mgr, 3.0);
  global.AddManager(logistics_mgr, 1.0);

  // Drive half the workload, pause logistics from the control plane, finish.
  CWF_CHECK(global.Run(&clock, Timestamp::Seconds(1)).ok());
  std::printf("after 1s: trading=%zu logistics=%zu tuples\n",
              trading.sink->count(), logistics.sink->count());
  std::printf("control> %s\n",
              controller.Execute("pause logistics")->c_str());
  CWF_CHECK(global.Run(&clock, Timestamp::Seconds(2)).ok());
  std::printf("after 2s (logistics paused): trading=%zu logistics=%zu\n",
              trading.sink->count(), logistics.sink->count());
  std::printf("control> %s\n",
              controller.Execute("resume logistics")->c_str());
  CWF_CHECK(global.Run(&clock, Timestamp::Seconds(60)).ok());
  std::printf("after drain: trading=%zu logistics=%zu\n",
              trading.sink->count(), logistics.sink->count());
  std::printf("cpu used: trading=%.3fs logistics=%.3fs (weights 3:1)\n",
              static_cast<double>(trading_mgr->cpu_time_used()) / 1e6,
              static_cast<double>(logistics_mgr->cpu_time_used()) / 1e6);
  auto listing = controller.Execute("list");
  std::printf("control> list\n%s", listing->c_str());
  return 0;
}

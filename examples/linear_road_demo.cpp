// Linear Road end-to-end demo: generate the benchmark workload, run the
// two-level continuous workflow under a chosen scheduler, and print the
// QoS summary. (The bench/ binaries run the full paper experiments; this
// example is the human-sized tour.)
//
// Usage: linear_road_demo [qbs|rr|rb|fifo|edf|pncwf] [duration_seconds]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "lrb/harness.h"

using namespace cwf;
using namespace cwf::lrb;

int main(int argc, char** argv) {
  ExperimentOptions opt;
  opt.scheduler = SchedulerKind::kQBS;
  if (argc > 1) {
    const char* name = argv[1];
    if (!std::strcmp(name, "rr")) opt.scheduler = SchedulerKind::kRR;
    else if (!std::strcmp(name, "rb")) opt.scheduler = SchedulerKind::kRB;
    else if (!std::strcmp(name, "fifo")) opt.scheduler = SchedulerKind::kFIFO;
    else if (!std::strcmp(name, "edf")) opt.scheduler = SchedulerKind::kEDF;
    else if (!std::strcmp(name, "pncwf")) opt.scheduler = SchedulerKind::kPNCWF;
  }
  opt.workload.duration =
      Seconds(argc > 2 ? std::atof(argv[2]) : 240.0);

  std::printf("Linear Road, %s scheduler, %.0f s of traffic...\n",
              SchedulerKindName(opt.scheduler),
              static_cast<double>(opt.workload.duration) / 1e6);
  auto res = RunLRBExperiment(opt);
  if (!res.ok()) {
    std::printf("experiment failed: %s\n", res.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%zu position reports from %zu injected accidents\n",
              res->reports_generated, res->accidents_injected);
  std::printf("tolls calculated:        %llu\n",
              static_cast<unsigned long long>(res->tolls_calculated));
  std::printf("toll response time:      avg %.3fs  p95 %.3fs  max %.3fs\n",
              res->toll_avg_response_s, res->toll_p95_response_s,
              res->toll_max_response_s);
  std::printf("accident notifications:  %zu (%.1f%% within the 5s target)\n",
              res->accident_notifications,
              res->accident_fraction_under_5s * 100.0);
  std::printf("accidents recorded:      %llu\n",
              static_cast<unsigned long long>(res->accidents_recorded));
  std::printf("engine: %llu firings, %llu director iterations\n",
              static_cast<unsigned long long>(res->total_firings),
              static_cast<unsigned long long>(res->director_iterations));
  std::printf("\nresponse-time curve (10 s buckets):\n%s",
              RenderCurve(*res, SchedulerKindName(opt.scheduler)).c_str());
  return 0;
}

// Real-time deployment mode: the PNCWF director with one OS thread per
// actor, a RealClock, and a producer thread pushing tuples over the push
// channel while the workflow runs — the paper's original (pre-STAFiLOS)
// execution model, live.

#include <chrono>
#include <cstdio>
#include <thread>

#include "actors/library.h"
#include "directors/pncwf_director.h"
#include "stream/stream_source.h"

using namespace cwf;

int main() {
  Workflow wf("realtime");
  auto feed = std::make_shared<PushChannel>();
  auto* src = wf.AddActor<StreamSourceActor>("sensor", feed);
  auto* smooth = wf.AddActor<WindowFnActor>(
      "smooth", WindowSpec::Tuples(3, 1),
      [](const Window& w, std::vector<Token>* out) {
        double sum = 0;
        for (const CWEvent& e : w.events) {
          sum += e.token.AsDouble();
        }
        out->push_back(Token(sum / static_cast<double>(w.size())));
        return Status::OK();
      });
  auto* sink = wf.AddActor<CollectorSink>("sink");
  src->out()->set_schema(TokenType::Double());
  smooth->out()->set_schema(TokenType::Double());
  sink->in()->set_required_schema(TokenType::Double());
  CWF_CHECK(wf.Connect(src->out(), smooth->in()).ok());
  CWF_CHECK(wf.Connect(smooth->out(), sink->in()).ok());

  RealClock clock;
  PNCWFOptions options;
  options.mode = PNCWFMode::kOsThreads;
  PNCWFDirector director(options);
  CWF_CHECK(director.Initialize(&wf, &clock, nullptr).ok());

  // A live producer pushes while the workflow threads run.
  std::thread producer([&] {
    for (int i = 0; i < 30; ++i) {
      feed->Push(Token(100.0 + (i % 7)), clock.Now());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    feed->Close();
  });

  CWF_CHECK(director.Run(Timestamp::Max()).ok());
  producer.join();
  CWF_CHECK(director.Wrapup().ok());

  auto got = sink->TakeSnapshot();
  std::printf("received %zu smoothed readings on OS threads; last=%.2f\n",
              got.size(), got.empty() ? 0.0 : got.back().token.AsDouble());
  std::printf("wall-clock response of last result: %.3f ms\n",
              static_cast<double>(got.back().completed_at -
                                  got.back().event_timestamp) /
                  1000.0);
  return 0;
}

# Empty dependencies file for confluence.
# This may be replaced when dependencies are built.

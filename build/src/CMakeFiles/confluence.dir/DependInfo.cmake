
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/actors/library.cpp" "src/CMakeFiles/confluence.dir/actors/library.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/actors/library.cpp.o.d"
  "/root/repo/src/actors/stream_ops.cpp" "src/CMakeFiles/confluence.dir/actors/stream_ops.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/actors/stream_ops.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/confluence.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/confluence.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/CMakeFiles/confluence.dir/common/status.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/common/status.cpp.o.d"
  "/root/repo/src/common/time.cpp" "src/CMakeFiles/confluence.dir/common/time.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/common/time.cpp.o.d"
  "/root/repo/src/core/actor.cpp" "src/CMakeFiles/confluence.dir/core/actor.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/core/actor.cpp.o.d"
  "/root/repo/src/core/clock.cpp" "src/CMakeFiles/confluence.dir/core/clock.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/core/clock.cpp.o.d"
  "/root/repo/src/core/composite_actor.cpp" "src/CMakeFiles/confluence.dir/core/composite_actor.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/core/composite_actor.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/CMakeFiles/confluence.dir/core/cost_model.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/core/cost_model.cpp.o.d"
  "/root/repo/src/core/director.cpp" "src/CMakeFiles/confluence.dir/core/director.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/core/director.cpp.o.d"
  "/root/repo/src/core/event.cpp" "src/CMakeFiles/confluence.dir/core/event.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/core/event.cpp.o.d"
  "/root/repo/src/core/port.cpp" "src/CMakeFiles/confluence.dir/core/port.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/core/port.cpp.o.d"
  "/root/repo/src/core/receiver.cpp" "src/CMakeFiles/confluence.dir/core/receiver.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/core/receiver.cpp.o.d"
  "/root/repo/src/core/record.cpp" "src/CMakeFiles/confluence.dir/core/record.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/core/record.cpp.o.d"
  "/root/repo/src/core/token.cpp" "src/CMakeFiles/confluence.dir/core/token.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/core/token.cpp.o.d"
  "/root/repo/src/core/wave.cpp" "src/CMakeFiles/confluence.dir/core/wave.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/core/wave.cpp.o.d"
  "/root/repo/src/core/workflow.cpp" "src/CMakeFiles/confluence.dir/core/workflow.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/core/workflow.cpp.o.d"
  "/root/repo/src/db/database.cpp" "src/CMakeFiles/confluence.dir/db/database.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/db/database.cpp.o.d"
  "/root/repo/src/db/query.cpp" "src/CMakeFiles/confluence.dir/db/query.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/db/query.cpp.o.d"
  "/root/repo/src/db/schema.cpp" "src/CMakeFiles/confluence.dir/db/schema.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/db/schema.cpp.o.d"
  "/root/repo/src/db/table.cpp" "src/CMakeFiles/confluence.dir/db/table.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/db/table.cpp.o.d"
  "/root/repo/src/db/value.cpp" "src/CMakeFiles/confluence.dir/db/value.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/db/value.cpp.o.d"
  "/root/repo/src/directors/ddf_director.cpp" "src/CMakeFiles/confluence.dir/directors/ddf_director.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/directors/ddf_director.cpp.o.d"
  "/root/repo/src/directors/pncwf_director.cpp" "src/CMakeFiles/confluence.dir/directors/pncwf_director.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/directors/pncwf_director.cpp.o.d"
  "/root/repo/src/directors/scwf_director.cpp" "src/CMakeFiles/confluence.dir/directors/scwf_director.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/directors/scwf_director.cpp.o.d"
  "/root/repo/src/directors/sdf_director.cpp" "src/CMakeFiles/confluence.dir/directors/sdf_director.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/directors/sdf_director.cpp.o.d"
  "/root/repo/src/directors/taxonomy.cpp" "src/CMakeFiles/confluence.dir/directors/taxonomy.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/directors/taxonomy.cpp.o.d"
  "/root/repo/src/lrb/actors.cpp" "src/CMakeFiles/confluence.dir/lrb/actors.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/lrb/actors.cpp.o.d"
  "/root/repo/src/lrb/generator.cpp" "src/CMakeFiles/confluence.dir/lrb/generator.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/lrb/generator.cpp.o.d"
  "/root/repo/src/lrb/harness.cpp" "src/CMakeFiles/confluence.dir/lrb/harness.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/lrb/harness.cpp.o.d"
  "/root/repo/src/lrb/metrics.cpp" "src/CMakeFiles/confluence.dir/lrb/metrics.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/lrb/metrics.cpp.o.d"
  "/root/repo/src/lrb/types.cpp" "src/CMakeFiles/confluence.dir/lrb/types.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/lrb/types.cpp.o.d"
  "/root/repo/src/lrb/workflow_builder.cpp" "src/CMakeFiles/confluence.dir/lrb/workflow_builder.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/lrb/workflow_builder.cpp.o.d"
  "/root/repo/src/multi/connection_controller.cpp" "src/CMakeFiles/confluence.dir/multi/connection_controller.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/multi/connection_controller.cpp.o.d"
  "/root/repo/src/multi/global_scheduler.cpp" "src/CMakeFiles/confluence.dir/multi/global_scheduler.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/multi/global_scheduler.cpp.o.d"
  "/root/repo/src/multi/manager.cpp" "src/CMakeFiles/confluence.dir/multi/manager.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/multi/manager.cpp.o.d"
  "/root/repo/src/stafilos/abstract_scheduler.cpp" "src/CMakeFiles/confluence.dir/stafilos/abstract_scheduler.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/stafilos/abstract_scheduler.cpp.o.d"
  "/root/repo/src/stafilos/edf_scheduler.cpp" "src/CMakeFiles/confluence.dir/stafilos/edf_scheduler.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/stafilos/edf_scheduler.cpp.o.d"
  "/root/repo/src/stafilos/fifo_scheduler.cpp" "src/CMakeFiles/confluence.dir/stafilos/fifo_scheduler.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/stafilos/fifo_scheduler.cpp.o.d"
  "/root/repo/src/stafilos/qbs_scheduler.cpp" "src/CMakeFiles/confluence.dir/stafilos/qbs_scheduler.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/stafilos/qbs_scheduler.cpp.o.d"
  "/root/repo/src/stafilos/rb_scheduler.cpp" "src/CMakeFiles/confluence.dir/stafilos/rb_scheduler.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/stafilos/rb_scheduler.cpp.o.d"
  "/root/repo/src/stafilos/rr_scheduler.cpp" "src/CMakeFiles/confluence.dir/stafilos/rr_scheduler.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/stafilos/rr_scheduler.cpp.o.d"
  "/root/repo/src/stafilos/statistics.cpp" "src/CMakeFiles/confluence.dir/stafilos/statistics.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/stafilos/statistics.cpp.o.d"
  "/root/repo/src/stream/push_channel.cpp" "src/CMakeFiles/confluence.dir/stream/push_channel.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/stream/push_channel.cpp.o.d"
  "/root/repo/src/stream/stream_source.cpp" "src/CMakeFiles/confluence.dir/stream/stream_source.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/stream/stream_source.cpp.o.d"
  "/root/repo/src/stream/tcp_listener.cpp" "src/CMakeFiles/confluence.dir/stream/tcp_listener.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/stream/tcp_listener.cpp.o.d"
  "/root/repo/src/stream/trace.cpp" "src/CMakeFiles/confluence.dir/stream/trace.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/stream/trace.cpp.o.d"
  "/root/repo/src/window/tm_windowed_receiver.cpp" "src/CMakeFiles/confluence.dir/window/tm_windowed_receiver.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/window/tm_windowed_receiver.cpp.o.d"
  "/root/repo/src/window/window_operator.cpp" "src/CMakeFiles/confluence.dir/window/window_operator.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/window/window_operator.cpp.o.d"
  "/root/repo/src/window/window_spec.cpp" "src/CMakeFiles/confluence.dir/window/window_spec.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/window/window_spec.cpp.o.d"
  "/root/repo/src/window/windowed_receiver.cpp" "src/CMakeFiles/confluence.dir/window/windowed_receiver.cpp.o" "gcc" "src/CMakeFiles/confluence.dir/window/windowed_receiver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

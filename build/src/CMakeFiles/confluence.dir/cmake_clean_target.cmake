file(REMOVE_RECURSE
  "libconfluence.a"
)

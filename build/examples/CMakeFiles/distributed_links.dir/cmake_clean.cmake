file(REMOVE_RECURSE
  "CMakeFiles/distributed_links.dir/distributed_links.cpp.o"
  "CMakeFiles/distributed_links.dir/distributed_links.cpp.o.d"
  "distributed_links"
  "distributed_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

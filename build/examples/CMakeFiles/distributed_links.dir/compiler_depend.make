# Empty compiler generated dependencies file for distributed_links.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for astro_monitor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/astro_monitor.dir/astro_monitor.cpp.o"
  "CMakeFiles/astro_monitor.dir/astro_monitor.cpp.o.d"
  "astro_monitor"
  "astro_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astro_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

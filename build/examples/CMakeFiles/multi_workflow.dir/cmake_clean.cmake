file(REMOVE_RECURSE
  "CMakeFiles/multi_workflow.dir/multi_workflow.cpp.o"
  "CMakeFiles/multi_workflow.dir/multi_workflow.cpp.o.d"
  "multi_workflow"
  "multi_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

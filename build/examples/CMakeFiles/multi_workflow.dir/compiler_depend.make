# Empty compiler generated dependencies file for multi_workflow.
# This may be replaced when dependencies are built.

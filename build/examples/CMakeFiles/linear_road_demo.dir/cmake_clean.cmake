file(REMOVE_RECURSE
  "CMakeFiles/linear_road_demo.dir/linear_road_demo.cpp.o"
  "CMakeFiles/linear_road_demo.dir/linear_road_demo.cpp.o.d"
  "linear_road_demo"
  "linear_road_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_road_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

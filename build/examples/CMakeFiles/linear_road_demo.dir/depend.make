# Empty dependencies file for linear_road_demo.
# This may be replaced when dependencies are built.

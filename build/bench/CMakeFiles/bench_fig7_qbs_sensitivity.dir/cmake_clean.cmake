file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_qbs_sensitivity.dir/bench_fig7_qbs_sensitivity.cpp.o"
  "CMakeFiles/bench_fig7_qbs_sensitivity.dir/bench_fig7_qbs_sensitivity.cpp.o.d"
  "bench_fig7_qbs_sensitivity"
  "bench_fig7_qbs_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_qbs_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

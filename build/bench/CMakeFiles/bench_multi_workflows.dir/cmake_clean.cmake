file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_workflows.dir/bench_multi_workflows.cpp.o"
  "CMakeFiles/bench_multi_workflows.dir/bench_multi_workflows.cpp.o.d"
  "bench_multi_workflows"
  "bench_multi_workflows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_workflows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_multi_workflows.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_rr_sensitivity.dir/bench_fig6_rr_sensitivity.cpp.o"
  "CMakeFiles/bench_fig6_rr_sensitivity.dir/bench_fig6_rr_sensitivity.cpp.o.d"
  "bench_fig6_rr_sensitivity"
  "bench_fig6_rr_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_rr_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

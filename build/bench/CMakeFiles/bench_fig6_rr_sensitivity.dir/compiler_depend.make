# Empty compiler generated dependencies file for bench_fig6_rr_sensitivity.
# This may be replaced when dependencies are built.

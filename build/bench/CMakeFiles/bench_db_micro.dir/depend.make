# Empty dependencies file for bench_db_micro.
# This may be replaced when dependencies are built.

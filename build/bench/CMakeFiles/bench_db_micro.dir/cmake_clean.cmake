file(REMOVE_RECURSE
  "CMakeFiles/bench_db_micro.dir/bench_db_micro.cpp.o"
  "CMakeFiles/bench_db_micro.dir/bench_db_micro.cpp.o.d"
  "bench_db_micro"
  "bench_db_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_db_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

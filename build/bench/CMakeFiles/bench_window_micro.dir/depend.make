# Empty dependencies file for bench_window_micro.
# This may be replaced when dependencies are built.

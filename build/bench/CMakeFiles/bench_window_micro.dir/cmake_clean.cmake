file(REMOVE_RECURSE
  "CMakeFiles/bench_window_micro.dir/bench_window_micro.cpp.o"
  "CMakeFiles/bench_window_micro.dir/bench_window_micro.cpp.o.d"
  "bench_window_micro"
  "bench_window_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_window_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/push_channel_test.dir/stream/push_channel_test.cpp.o"
  "CMakeFiles/push_channel_test.dir/stream/push_channel_test.cpp.o.d"
  "push_channel_test"
  "push_channel_test.pdb"
  "push_channel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/push_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

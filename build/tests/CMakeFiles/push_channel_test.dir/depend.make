# Empty dependencies file for push_channel_test.
# This may be replaced when dependencies are built.

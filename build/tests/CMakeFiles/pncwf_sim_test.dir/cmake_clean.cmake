file(REMOVE_RECURSE
  "CMakeFiles/pncwf_sim_test.dir/directors/pncwf_sim_test.cpp.o"
  "CMakeFiles/pncwf_sim_test.dir/directors/pncwf_sim_test.cpp.o.d"
  "pncwf_sim_test"
  "pncwf_sim_test.pdb"
  "pncwf_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pncwf_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

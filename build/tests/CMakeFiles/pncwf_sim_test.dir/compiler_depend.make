# Empty compiler generated dependencies file for pncwf_sim_test.
# This may be replaced when dependencies are built.

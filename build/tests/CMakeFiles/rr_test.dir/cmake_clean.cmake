file(REMOVE_RECURSE
  "CMakeFiles/rr_test.dir/stafilos/rr_test.cpp.o"
  "CMakeFiles/rr_test.dir/stafilos/rr_test.cpp.o.d"
  "rr_test"
  "rr_test.pdb"
  "rr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

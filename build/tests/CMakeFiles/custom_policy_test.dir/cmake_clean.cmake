file(REMOVE_RECURSE
  "CMakeFiles/custom_policy_test.dir/stafilos/custom_policy_test.cpp.o"
  "CMakeFiles/custom_policy_test.dir/stafilos/custom_policy_test.cpp.o.d"
  "custom_policy_test"
  "custom_policy_test.pdb"
  "custom_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

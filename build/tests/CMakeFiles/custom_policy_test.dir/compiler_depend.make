# Empty compiler generated dependencies file for custom_policy_test.
# This may be replaced when dependencies are built.

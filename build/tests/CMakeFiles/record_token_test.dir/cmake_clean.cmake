file(REMOVE_RECURSE
  "CMakeFiles/record_token_test.dir/core/record_token_test.cpp.o"
  "CMakeFiles/record_token_test.dir/core/record_token_test.cpp.o.d"
  "record_token_test"
  "record_token_test.pdb"
  "record_token_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_token_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

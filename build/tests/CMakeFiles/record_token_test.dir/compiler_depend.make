# Empty compiler generated dependencies file for record_token_test.
# This may be replaced when dependencies are built.

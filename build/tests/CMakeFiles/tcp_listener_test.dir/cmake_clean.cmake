file(REMOVE_RECURSE
  "CMakeFiles/tcp_listener_test.dir/stream/tcp_listener_test.cpp.o"
  "CMakeFiles/tcp_listener_test.dir/stream/tcp_listener_test.cpp.o.d"
  "tcp_listener_test"
  "tcp_listener_test.pdb"
  "tcp_listener_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_listener_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tcp_listener_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/db_concurrency_test.dir/db/concurrency_test.cpp.o"
  "CMakeFiles/db_concurrency_test.dir/db/concurrency_test.cpp.o.d"
  "db_concurrency_test"
  "db_concurrency_test.pdb"
  "db_concurrency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for abstract_scheduler_test.
# This may be replaced when dependencies are built.

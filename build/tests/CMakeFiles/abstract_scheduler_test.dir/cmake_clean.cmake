file(REMOVE_RECURSE
  "CMakeFiles/abstract_scheduler_test.dir/stafilos/abstract_scheduler_test.cpp.o"
  "CMakeFiles/abstract_scheduler_test.dir/stafilos/abstract_scheduler_test.cpp.o.d"
  "abstract_scheduler_test"
  "abstract_scheduler_test.pdb"
  "abstract_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abstract_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lrb_harness_test.
# This may be replaced when dependencies are built.

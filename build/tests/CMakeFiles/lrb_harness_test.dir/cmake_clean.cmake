file(REMOVE_RECURSE
  "CMakeFiles/lrb_harness_test.dir/lrb/harness_test.cpp.o"
  "CMakeFiles/lrb_harness_test.dir/lrb/harness_test.cpp.o.d"
  "lrb_harness_test"
  "lrb_harness_test.pdb"
  "lrb_harness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrb_harness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

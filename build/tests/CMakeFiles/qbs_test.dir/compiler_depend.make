# Empty compiler generated dependencies file for qbs_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/qbs_test.dir/stafilos/qbs_test.cpp.o"
  "CMakeFiles/qbs_test.dir/stafilos/qbs_test.cpp.o.d"
  "qbs_test"
  "qbs_test.pdb"
  "qbs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

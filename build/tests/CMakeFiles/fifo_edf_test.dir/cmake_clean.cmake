file(REMOVE_RECURSE
  "CMakeFiles/fifo_edf_test.dir/stafilos/fifo_edf_test.cpp.o"
  "CMakeFiles/fifo_edf_test.dir/stafilos/fifo_edf_test.cpp.o.d"
  "fifo_edf_test"
  "fifo_edf_test.pdb"
  "fifo_edf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fifo_edf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for scwf_test.
# This may be replaced when dependencies are built.

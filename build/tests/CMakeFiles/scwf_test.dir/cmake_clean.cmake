file(REMOVE_RECURSE
  "CMakeFiles/scwf_test.dir/directors/scwf_test.cpp.o"
  "CMakeFiles/scwf_test.dir/directors/scwf_test.cpp.o.d"
  "scwf_test"
  "scwf_test.pdb"
  "scwf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scwf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

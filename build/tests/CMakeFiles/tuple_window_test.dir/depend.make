# Empty dependencies file for tuple_window_test.
# This may be replaced when dependencies are built.

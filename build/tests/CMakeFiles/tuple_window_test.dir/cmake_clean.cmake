file(REMOVE_RECURSE
  "CMakeFiles/tuple_window_test.dir/window/tuple_window_test.cpp.o"
  "CMakeFiles/tuple_window_test.dir/window/tuple_window_test.cpp.o.d"
  "tuple_window_test"
  "tuple_window_test.pdb"
  "tuple_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuple_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

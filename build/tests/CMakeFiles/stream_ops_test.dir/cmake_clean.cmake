file(REMOVE_RECURSE
  "CMakeFiles/stream_ops_test.dir/core/stream_ops_test.cpp.o"
  "CMakeFiles/stream_ops_test.dir/core/stream_ops_test.cpp.o.d"
  "stream_ops_test"
  "stream_ops_test.pdb"
  "stream_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

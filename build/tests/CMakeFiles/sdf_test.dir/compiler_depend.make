# Empty compiler generated dependencies file for sdf_test.
# This may be replaced when dependencies are built.

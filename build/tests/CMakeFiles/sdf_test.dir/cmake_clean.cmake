file(REMOVE_RECURSE
  "CMakeFiles/sdf_test.dir/directors/sdf_test.cpp.o"
  "CMakeFiles/sdf_test.dir/directors/sdf_test.cpp.o.d"
  "sdf_test"
  "sdf_test.pdb"
  "sdf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for port_actor_test.
# This may be replaced when dependencies are built.

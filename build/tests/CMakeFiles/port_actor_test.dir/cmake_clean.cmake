file(REMOVE_RECURSE
  "CMakeFiles/port_actor_test.dir/core/port_actor_test.cpp.o"
  "CMakeFiles/port_actor_test.dir/core/port_actor_test.cpp.o.d"
  "port_actor_test"
  "port_actor_test.pdb"
  "port_actor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/port_actor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

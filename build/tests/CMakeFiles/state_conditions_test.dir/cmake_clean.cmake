file(REMOVE_RECURSE
  "CMakeFiles/state_conditions_test.dir/stafilos/state_conditions_test.cpp.o"
  "CMakeFiles/state_conditions_test.dir/stafilos/state_conditions_test.cpp.o.d"
  "state_conditions_test"
  "state_conditions_test.pdb"
  "state_conditions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_conditions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

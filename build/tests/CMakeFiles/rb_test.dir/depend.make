# Empty dependencies file for rb_test.
# This may be replaced when dependencies are built.

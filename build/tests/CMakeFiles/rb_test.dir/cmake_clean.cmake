file(REMOVE_RECURSE
  "CMakeFiles/rb_test.dir/stafilos/rb_test.cpp.o"
  "CMakeFiles/rb_test.dir/stafilos/rb_test.cpp.o.d"
  "rb_test"
  "rb_test.pdb"
  "rb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

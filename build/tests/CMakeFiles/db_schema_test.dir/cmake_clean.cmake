file(REMOVE_RECURSE
  "CMakeFiles/db_schema_test.dir/db/schema_test.cpp.o"
  "CMakeFiles/db_schema_test.dir/db/schema_test.cpp.o.d"
  "db_schema_test"
  "db_schema_test.pdb"
  "db_schema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

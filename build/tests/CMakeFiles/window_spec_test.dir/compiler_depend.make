# Empty compiler generated dependencies file for window_spec_test.
# This may be replaced when dependencies are built.

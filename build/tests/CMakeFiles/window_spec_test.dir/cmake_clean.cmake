file(REMOVE_RECURSE
  "CMakeFiles/window_spec_test.dir/window/window_spec_test.cpp.o"
  "CMakeFiles/window_spec_test.dir/window/window_spec_test.cpp.o.d"
  "window_spec_test"
  "window_spec_test.pdb"
  "window_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ddf_test.dir/directors/ddf_test.cpp.o"
  "CMakeFiles/ddf_test.dir/directors/ddf_test.cpp.o.d"
  "ddf_test"
  "ddf_test.pdb"
  "ddf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

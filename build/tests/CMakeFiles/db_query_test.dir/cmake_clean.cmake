file(REMOVE_RECURSE
  "CMakeFiles/db_query_test.dir/db/query_test.cpp.o"
  "CMakeFiles/db_query_test.dir/db/query_test.cpp.o.d"
  "db_query_test"
  "db_query_test.pdb"
  "db_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/lrb_workflow_test.dir/lrb/workflow_test.cpp.o"
  "CMakeFiles/lrb_workflow_test.dir/lrb/workflow_test.cpp.o.d"
  "lrb_workflow_test"
  "lrb_workflow_test.pdb"
  "lrb_workflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrb_workflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lrb_workflow_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for lrb_actors_test.
# This may be replaced when dependencies are built.

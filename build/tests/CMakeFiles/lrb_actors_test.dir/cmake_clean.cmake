file(REMOVE_RECURSE
  "CMakeFiles/lrb_actors_test.dir/lrb/actors_test.cpp.o"
  "CMakeFiles/lrb_actors_test.dir/lrb/actors_test.cpp.o.d"
  "lrb_actors_test"
  "lrb_actors_test.pdb"
  "lrb_actors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrb_actors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

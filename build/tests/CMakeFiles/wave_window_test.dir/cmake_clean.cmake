file(REMOVE_RECURSE
  "CMakeFiles/wave_window_test.dir/window/wave_window_test.cpp.o"
  "CMakeFiles/wave_window_test.dir/window/wave_window_test.cpp.o.d"
  "wave_window_test"
  "wave_window_test.pdb"
  "wave_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

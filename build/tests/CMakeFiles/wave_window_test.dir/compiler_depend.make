# Empty compiler generated dependencies file for wave_window_test.
# This may be replaced when dependencies are built.

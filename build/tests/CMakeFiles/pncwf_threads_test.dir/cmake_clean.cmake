file(REMOVE_RECURSE
  "CMakeFiles/pncwf_threads_test.dir/directors/pncwf_threads_test.cpp.o"
  "CMakeFiles/pncwf_threads_test.dir/directors/pncwf_threads_test.cpp.o.d"
  "pncwf_threads_test"
  "pncwf_threads_test.pdb"
  "pncwf_threads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pncwf_threads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

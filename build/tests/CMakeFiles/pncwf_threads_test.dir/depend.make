# Empty dependencies file for pncwf_threads_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for lrb_metrics_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lrb_metrics_test.dir/lrb/metrics_test.cpp.o"
  "CMakeFiles/lrb_metrics_test.dir/lrb/metrics_test.cpp.o.d"
  "lrb_metrics_test"
  "lrb_metrics_test.pdb"
  "lrb_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrb_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/window_property_test.dir/window/window_property_test.cpp.o"
  "CMakeFiles/window_property_test.dir/window/window_property_test.cpp.o.d"
  "window_property_test"
  "window_property_test.pdb"
  "window_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for time_rng_test.
# This may be replaced when dependencies are built.

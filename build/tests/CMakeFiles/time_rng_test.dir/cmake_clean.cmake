file(REMOVE_RECURSE
  "CMakeFiles/time_rng_test.dir/common/time_rng_test.cpp.o"
  "CMakeFiles/time_rng_test.dir/common/time_rng_test.cpp.o.d"
  "time_rng_test"
  "time_rng_test.pdb"
  "time_rng_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_rng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

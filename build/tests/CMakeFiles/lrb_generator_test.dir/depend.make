# Empty dependencies file for lrb_generator_test.
# This may be replaced when dependencies are built.

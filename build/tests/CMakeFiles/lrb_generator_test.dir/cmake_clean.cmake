file(REMOVE_RECURSE
  "CMakeFiles/lrb_generator_test.dir/lrb/generator_test.cpp.o"
  "CMakeFiles/lrb_generator_test.dir/lrb/generator_test.cpp.o.d"
  "lrb_generator_test"
  "lrb_generator_test.pdb"
  "lrb_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrb_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// The canonical benchmark result schema: every bench_*.cpp and serving tool
// funnels its measurements through BenchResult so each run lands on disk as
// one BENCH_<name>.json with the same shape — throughput, latency
// percentiles, peak RSS, host-time decomposition, git SHA and config —
// comparable across commits by tools/bench_compare (the CI perf-smoke
// lane's regression gate).
//
// Schema (BENCH_<name>.json, schema_version 1):
//   {
//     "schema_version": 1,
//     "bench": "lrb_serve",
//     "git_sha": "0123abc",
//     "config": {"scheduler": "QBS", ...},          // string map
//     "wall_s": 1.84,                               // host wall time
//     "throughput_per_s": 52173.9,                  // primary rate
//     "peak_rss_kb": 48216,
//     "latency_us": {"count":N,"mean":..,"p50":..,"p95":..,"p99":..,"max":..},
//     "extra_latency_us": {"accident_response": {...}},  // named summaries
//     "metrics": {"total_firings": 812345, ...},    // scalar extras
//     "host_phase_us": {"fire": 912345.2, ...}      // profiler decomposition
//   }
// Unknown keys are ignored on read so the schema can grow additively.

#ifndef CONFLUENCE_BENCH_HARNESS_H_
#define CONFLUENCE_BENCH_HARNESS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "lrb/harness.h"
#include "obs/metrics.h"

namespace cwf::bench {

inline constexpr int kSchemaVersion = 1;

/// \brief Compile-time git SHA of the build ("unknown" outside a checkout).
const char* GitSha();

/// \brief Peak resident set size of this process, KiB (getrusage).
long PeakRssKb();

/// \brief Six-number latency summary (µs) in the canonical schema.
struct LatencySummary {
  uint64_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

LatencySummary FromHistogram(const obs::HistogramSnapshot& snapshot);

/// \brief One benchmark run, ready to serialize.
struct BenchResult {
  std::string bench;    ///< canonical name; file is BENCH_<bench>.json
  std::string git_sha;  ///< defaults to GitSha() at render time if empty
  std::map<std::string, std::string> config;
  double wall_s = 0;
  double throughput_per_s = 0;
  long peak_rss_kb = 0;  ///< filled from PeakRssKb() at render time if 0
  LatencySummary latency_us;
  std::map<std::string, LatencySummary> extra_latency_us;
  std::map<std::string, double> metrics;
  std::map<std::string, double> host_phase_us;
};

std::string RenderBenchJson(const BenchResult& result);

/// \brief Serialize to `path` (conventionally BENCH_<name>.json).
Status WriteBenchJson(const BenchResult& result, const std::string& path);

/// \brief Parse a canonical BENCH_*.json document (round-trip safe with
/// RenderBenchJson; unknown keys are skipped). Rejects documents without a
/// schema_version.
Result<BenchResult> ParseBenchJson(const std::string& json);
Result<BenchResult> ReadBenchJson(const std::string& path);

/// \brief Convert an LRB experiment result. `wall_s` is the measured host
/// wall time of the run (the experiment itself runs on the virtual clock);
/// throughput is input tuples per host-wall second.
BenchResult FromLRB(const lrb::ExperimentResult& result,
                    const std::string& bench_name, double wall_s);

// ---------------------------------------------------------------------------
// Regression comparison (tools/bench_compare)
// ---------------------------------------------------------------------------

/// \brief Regression thresholds, percent. A metric must degrade by MORE
/// than its threshold to count as a regression (improvements never do).
struct CompareThresholds {
  double throughput_drop_pct = 10;
  double latency_rise_pct = 25;
  double rss_rise_pct = 25;
};

struct CompareFinding {
  std::string metric;  ///< e.g. "throughput_per_s", "latency_us.p95"
  double baseline = 0;
  double current = 0;
  double delta_pct = 0;  ///< signed; positive = increased
  bool regression = false;
};

struct CompareReport {
  std::string bench;
  std::vector<CompareFinding> findings;
  bool regressed = false;
  /// Aligned human-readable table, one line per finding, regressions
  /// flagged.
  std::string Render() const;
};

/// \brief Compare `current` against `baseline` under `thresholds`.
CompareReport CompareBench(const BenchResult& baseline,
                           const BenchResult& current,
                           const CompareThresholds& thresholds);

}  // namespace cwf::bench

#endif  // CONFLUENCE_BENCH_HARNESS_H_

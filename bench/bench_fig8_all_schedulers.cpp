// Figure 8: response times of all the main schedulers — QBS-q500,
// RR-q40000, RB and the thread-based PNCWF — plus the library's extension
// policies (FIFO, EDF) for reference.

#include <cstdio>

#include "lrb/harness.h"

using namespace cwf;
using namespace cwf::lrb;

int main() {
  std::printf(
      "Figure 8: Response Times at TollNotification, all schedulers\n\n");
  struct Config {
    SchedulerKind kind;
    const char* label;
  };
  const Config configs[] = {
      {SchedulerKind::kQBS, "QBS-q500"}, {SchedulerKind::kRR, "RR-q40000"},
      {SchedulerKind::kRB, "RB"},        {SchedulerKind::kPNCWF, "PNCWF"},
      {SchedulerKind::kFIFO, "FIFO*"},   {SchedulerKind::kEDF, "EDF*"},
  };
  for (const Config& cfg : configs) {
    ExperimentOptions opt;
    opt.scheduler = cfg.kind;
    opt.qbs.basic_quantum = 500;
    opt.rr.slice = 40000;
    auto res = RunLRBExperiment(opt);
    if (!res.ok()) {
      std::printf("%s FAILED: %s\n", cfg.label,
                  res.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n", RenderCurve(*res, cfg.label).c_str());
    std::printf(
        "# %-9s avg=%7.3fs p95=%8.3fs max=%8.3fs thrash@2s=%5.0fs "
        "tolls=%zu accident_notifs=%zu firings=%llu\n\n",
        cfg.label, res->toll_avg_response_s, res->toll_p95_response_s,
        res->toll_max_response_s, res->ThrashTimeSeconds(2.0),
        res->toll_notifications, res->accident_notifications,
        static_cast<unsigned long long>(res->total_firings));
  }
  std::printf("(* library extensions, not part of the paper's Figure 8)\n");
  return 0;
}

// Figure 8: response times of all the main schedulers — QBS-q500,
// RR-q40000, RB and the thread-based PNCWF — plus the library's extension
// policies (FIFO, EDF) for reference.
//
// With --bench-dir DIR each configuration additionally lands as a canonical
// BENCH_fig8_<label>.json (bench/harness.h schema) for tools/bench_compare.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "harness.h"
#include "lrb/harness.h"

using namespace cwf;
using namespace cwf::lrb;

int main(int argc, char** argv) {
  std::string bench_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench-dir") == 0 && i + 1 < argc) {
      bench_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--bench-dir DIR]\n", argv[0]);
      return 2;
    }
  }
  std::printf(
      "Figure 8: Response Times at TollNotification, all schedulers\n\n");
  struct Config {
    SchedulerKind kind;
    const char* label;
    const char* slug;
  };
  const Config configs[] = {
      {SchedulerKind::kQBS, "QBS-q500", "qbs"},
      {SchedulerKind::kRR, "RR-q40000", "rr"},
      {SchedulerKind::kRB, "RB", "rb"},
      {SchedulerKind::kPNCWF, "PNCWF", "pncwf"},
      {SchedulerKind::kFIFO, "FIFO*", "fifo"},
      {SchedulerKind::kEDF, "EDF*", "edf"},
  };
  int failures = 0;
  for (const Config& cfg : configs) {
    ExperimentOptions opt;
    opt.scheduler = cfg.kind;
    opt.qbs.basic_quantum = 500;
    opt.rr.slice = 40000;
    const auto host_start = std::chrono::steady_clock::now();
    auto res = RunLRBExperiment(opt);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_start)
            .count();
    if (!res.ok()) {
      std::printf("%s FAILED: %s\n", cfg.label,
                  res.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("%s\n", RenderCurve(*res, cfg.label).c_str());
    std::printf(
        "# %-9s avg=%7.3fs p95=%8.3fs max=%8.3fs thrash@2s=%5.0fs "
        "tolls=%zu accident_notifs=%zu firings=%llu\n\n",
        cfg.label, res->toll_avg_response_s, res->toll_p95_response_s,
        res->toll_max_response_s, res->ThrashTimeSeconds(2.0),
        res->toll_notifications, res->accident_notifications,
        static_cast<unsigned long long>(res->total_firings));
    if (!bench_dir.empty()) {
      bench::BenchResult bench = bench::FromLRB(
          *res, std::string("fig8_") + cfg.slug, wall_s);
      bench.config["qbs_basic_quantum"] = "500";
      bench.config["rr_slice"] = "40000";
      const std::string path =
          bench_dir + "/BENCH_fig8_" + cfg.slug + ".json";
      const Status st = bench::WriteBenchJson(bench, path);
      if (!st.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
        ++failures;
      } else {
        std::printf("# wrote %s\n\n", path.c_str());
      }
    }
  }
  std::printf("(* library extensions, not part of the paper's Figure 8)\n");
  return failures == 0 ? 0 : 1;
}

// Embedded-store micro-benchmarks: the operations the Linear Road workflow
// issues per tuple (keyed upsert, indexed point lookup, the toll query's
// accident-proximity aggregate).

#include <benchmark/benchmark.h>

#include "lrb/actors.h"

namespace cwf::db {
namespace {

void BM_IndexedPointLookup(benchmark::State& state) {
  auto db = lrb::CreateLRBDatabase().value();
  Table* stats = db->GetTable(lrb::kTableSegmentStats).value();
  for (int64_t s = 0; s < 100; ++s) {
    CWF_CHECK(stats
                  ->Insert({Value(int64_t{0}), Value(int64_t{0}), Value(s),
                            Value(45.0), Value(int64_t{40}), Value(int64_t{1})})
                  .ok());
  }
  int64_t seg = 0;
  for (auto _ : state) {
    auto row = stats->SelectOne(
        And({Eq("xway", Value(int64_t{0})), Eq("dir", Value(int64_t{0})),
             Eq("seg", Value(seg))}));
    benchmark::DoNotOptimize(row);
    seg = (seg + 1) % 100;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexedPointLookup);

void BM_KeyedUpsert(benchmark::State& state) {
  auto db = lrb::CreateLRBDatabase().value();
  Table* stats = db->GetTable(lrb::kTableSegmentStats).value();
  int64_t seg = 0;
  for (auto _ : state) {
    CWF_CHECK(stats
                  ->Upsert({"xway", "dir", "seg"},
                           {Value(int64_t{0}), Value(int64_t{0}), Value(seg),
                            Value(45.0), Value(int64_t{40}), Value(int64_t{1})})
                  .ok());
    seg = (seg + 1) % 100;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeyedUpsert);

void BM_AccidentProximityQuery(benchmark::State& state) {
  auto db = lrb::CreateLRBDatabase().value();
  Table* accidents = db->GetTable(lrb::kTableAccidents).value();
  for (int64_t i = 0; i < state.range(0); ++i) {
    CWF_CHECK(accidents
                  ->Insert({Value(int64_t{0}), Value(int64_t{0}),
                            Value(i % 100), Value(i * 10), Value(i),
                            Value(i + 100000), Value(i)})
                  .ok());
  }
  int64_t seg = 0;
  for (auto _ : state) {
    auto hit = lrb::AccidentInScope(accidents, 0, 0, seg, 0);
    benchmark::DoNotOptimize(hit);
    seg = (seg + 1) % 100;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(state.range(0)) + " accident rows");
}
BENCHMARK(BM_AccidentProximityQuery)->Arg(8)->Arg(256);

}  // namespace
}  // namespace cwf::db

// Capacity-plan ablation: Linear Road under PNCWF (simulated threads) with
// the static capacity plan applied — bounded receivers + backpressure —
// versus the default unbounded deques, fed well above the declared rate so
// queues actually back up. Reports delivered results, peak receiver
// depths, wall time and peak RSS as a JSON array.
//
// Peak RSS (VmHWM) is process-wide and monotone, so the bounded
// configuration runs FIRST; the unbounded run then shows any additional
// peak its deeper queues cause.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/capacity_planner.h"
#include "directors/pncwf_director.h"
#include "lrb/harness.h"

using namespace cwf;
using namespace cwf::lrb;

namespace {

/// Peak resident set (VmHWM) in kilobytes; 0 when unavailable.
long PeakRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  long kb = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb;
}

struct RunResult {
  bool ok = false;
  std::string error;
  uint64_t injected = 0;
  uint64_t tolls = 0;
  uint64_t firings = 0;
  uint64_t max_queue_high_water = 0;
  uint64_t sum_queue_high_water = 0;
  double virtual_seconds = 0;
  double wall_ms = 0;
  long rss_peak_kb = 0;
};

RunResult RunOnce(bool apply_plan, const Trace& trace,
                  const CostModel& costs) {
  RunResult out;
  auto feed = std::make_shared<PushChannel>();
  feed->PushTrace(trace);
  feed->Close();
  auto app = BuildLRBApplication(feed, /*hierarchical=*/false);
  if (!app.ok()) {
    out.error = app.status().ToString();
    return out;
  }

  PNCWFOptions options;
  options.mode = PNCWFMode::kSimulatedThreads;
  PNCWFDirector director(options);
  if (apply_plan) {
    analysis::AnalysisOptions analysis_options;
    analysis_options.target_director = "PNCWF";
    analysis_options.cost_model = &costs;
    analysis_options.source_rates["Source"] =
        analysis::RateInterval::Exact(25.0);
    director.set_capacity_plan(
        analysis::PlanCapacity(*app->workflow, analysis_options));
  }

  VirtualClock clock;
  const auto wall_start = std::chrono::steady_clock::now();
  Status status = director.Initialize(app->workflow.get(), &clock, &costs);
  if (status.ok()) {
    status = director.Run(trace.EndTime() + Seconds(30));
  }
  if (!status.ok()) {
    out.error = status.ToString();
    return out;
  }
  out.wall_ms = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count() /
                1000.0;

  for (const ChannelSpec& ch : app->workflow->channels()) {
    const Receiver* r = ch.to->receiver(ch.to_channel);
    if (r == nullptr) {
      continue;
    }
    out.sum_queue_high_water += r->high_water_mark();
    if (r->high_water_mark() > out.max_queue_high_water) {
      out.max_queue_high_water = r->high_water_mark();
    }
  }
  out.injected = app->source->injected();
  out.tolls = app->toll_calculator->tolls_calculated();
  out.firings = director.total_firings();
  out.virtual_seconds = clock.Now().seconds();
  out.rss_peak_kb = PeakRssKb();
  (void)director.Wrapup();
  out.ok = true;
  return out;
}

void PrintJson(const char* label, const RunResult& r, bool last) {
  if (!r.ok) {
    std::printf("  {\"config\":\"%s\",\"error\":\"%s\"}%s\n", label,
                r.error.c_str(), last ? "" : ",");
    return;
  }
  std::printf(
      "  {\"config\":\"%s\",\"injected\":%llu,\"tolls\":%llu,"
      "\"firings\":%llu,\"max_queue_high_water\":%llu,"
      "\"sum_queue_high_water\":%llu,\"virtual_seconds\":%.1f,"
      "\"wall_ms\":%.1f,\"rss_peak_kb\":%ld}%s\n",
      label, static_cast<unsigned long long>(r.injected),
      static_cast<unsigned long long>(r.tolls),
      static_cast<unsigned long long>(r.firings),
      static_cast<unsigned long long>(r.max_queue_high_water),
      static_cast<unsigned long long>(r.sum_queue_high_water),
      r.virtual_seconds, r.wall_ms, r.rss_peak_kb, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  // Two overload levels against the declared 25 ev/s. The group-by
  // statistics windows retain roughly a full 60-second horizon of input,
  // so under sustained overload the planned bound on those channels
  // eventually fills and backpressure throttles the source: memory stays
  // capped at the planned bound while the unbounded configuration keeps
  // queueing. The levels differ in how fast that happens and how much
  // memory the unbounded run consumes in the meantime.
  struct Scenario {
    const char* name;
    double rate;
  };
  const Scenario scenarios[] = {{"overload-1.6x", 40.0},
                                {"overload-8x", 200.0}};

  Duration duration = Seconds(120);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      duration = Seconds(30);
    }
  }
  const CostModel costs = DefaultLRBCostModel();

  std::printf("[\n");
  bool ok = true;
  for (size_t s = 0; s < 2; ++s) {
    GeneratorOptions workload;
    workload.duration = duration;
    workload.initial_rate = scenarios[s].rate;
    workload.rate_slope_per_sec = 0.0;
    workload.max_rate = scenarios[s].rate;
    Generator generator(workload);
    const Trace trace = generator.Generate();

    const RunResult bounded = RunOnce(/*apply_plan=*/true, trace, costs);
    const RunResult unbounded = RunOnce(/*apply_plan=*/false, trace, costs);
    ok = ok && bounded.ok && unbounded.ok;

    std::string planned = std::string(scenarios[s].name) + "/planned-capacity";
    std::string plain = std::string(scenarios[s].name) + "/unbounded";
    PrintJson(planned.c_str(), bounded, /*last=*/false);
    PrintJson(plain.c_str(), unbounded, /*last=*/s == 1);
  }
  std::printf("]\n");
  return ok ? 0 : 1;
}

// Figure 5: workload of 0.5 highways — input rate (reports/sec) vs time.

#include <cstdio>

#include "lrb/generator.h"

using namespace cwf;
using namespace cwf::lrb;

int main() {
  GeneratorOptions opt;  // the paper's defaults
  Generator gen(opt);
  Trace trace = gen.Generate();
  std::printf("Figure 5: Workload of %.1f highways\n", opt.l_rating);
  std::printf("# %zu position reports, %zu cars, %zu accidents injected\n\n",
              gen.report().position_reports, gen.report().cars_spawned,
              gen.report().accidents_injected);
  std::printf("# time_s  reports_per_sec  target_rate\n");
  const int64_t bucket = 20;
  const int64_t end = opt.duration / Seconds(1);
  for (int64_t t = 0; t < end; t += bucket) {
    const double rate =
        static_cast<double>(trace.CountInRange(
            Timestamp::Seconds(static_cast<double>(t)),
            Timestamp::Seconds(static_cast<double>(t + bucket)))) /
        static_cast<double>(bucket);
    std::printf("%8lld  %15.1f  %11.1f\n", static_cast<long long>(t), rate,
                gen.TargetRate(static_cast<double>(t) + bucket / 2.0));
  }
  return 0;
}

// Figure 6: response times at TollNotification for the RR scheduler using
// varying basic quantum (slice) values.

#include <cstdio>

#include "lrb/harness.h"

using namespace cwf;
using namespace cwf::lrb;

int main() {
  std::printf(
      "Figure 6: Response Time at TollNotification for the RR scheduler\n\n");
  for (Duration q : {Duration(5000), Duration(10000), Duration(20000),
                     Duration(40000)}) {
    ExperimentOptions opt;
    opt.scheduler = SchedulerKind::kRR;
    opt.rr.slice = q;
    auto res = RunLRBExperiment(opt);
    if (!res.ok()) {
      std::printf("RR-q%lld FAILED: %s\n", static_cast<long long>(q),
                  res.status().ToString().c_str());
      continue;
    }
    char label[64];
    std::snprintf(label, sizeof(label), "RR-q%lld", static_cast<long long>(q));
    std::printf("%s\n", RenderCurve(*res, label).c_str());
    std::printf("# %s: avg=%.3fs p95=%.3fs thrash@2s=%.0fs tolls=%zu\n\n",
                label, res->toll_avg_response_s, res->toll_p95_response_s,
                res->ThrashTimeSeconds(2.0), res->toll_notifications);
  }
  return 0;
}

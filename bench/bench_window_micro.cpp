// Window-operator micro-benchmarks: put() throughput across window kinds
// and group-by fan-out (the paper's discussion flags window-based actors as
// the performance-critical component).

#include <benchmark/benchmark.h>

#include "core/schema.h"
#include "stream/push_channel.h"
#include "window/window_operator.h"

namespace cwf {
namespace {

CWEvent IntEvent(int64_t v, int64_t ts_us, uint64_t seq) {
  CWEvent e;
  e.token = Token(v);
  e.timestamp = Timestamp(ts_us);
  e.wave = WaveTag::Root(seq);
  e.last_in_wave = true;
  e.seq = seq;
  return e;
}

CWEvent KeyedEvent(int64_t key, int64_t ts_us, uint64_t seq) {
  auto rec = std::make_shared<Record>();
  rec->Set("k", Value(key));
  rec->Set("v", Value(static_cast<int64_t>(seq)));
  CWEvent e;
  e.token = Token(RecordPtr(std::move(rec)));
  e.timestamp = Timestamp(ts_us);
  e.wave = WaveTag::Root(seq);
  e.last_in_wave = true;
  e.seq = seq;
  return e;
}

void BM_TupleWindowPut(benchmark::State& state) {
  WindowOperator op(
      WindowSpec::Tuples(state.range(0), 1));
  std::vector<Window> out;
  uint64_t seq = 0;
  for (auto _ : state) {
    out.clear();
    ++seq;
    CWF_CHECK(op.Put(IntEvent(1, static_cast<int64_t>(seq), seq), &out).ok());
    benchmark::DoNotOptimize(out);
    if (seq % 4096 == 0) {
      op.DrainExpired();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TupleWindowPut)->Arg(2)->Arg(4)->Arg(32);

void BM_TimeWindowPut(benchmark::State& state) {
  WindowOperator op(WindowSpec::Time(Seconds(60), Seconds(60))
                        .DeleteUsedEvents(true));
  std::vector<Window> out;
  uint64_t seq = 0;
  for (auto _ : state) {
    out.clear();
    ++seq;
    CWF_CHECK(op.Put(IntEvent(1, static_cast<int64_t>(seq) * 1000, seq), &out)
                  .ok());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimeWindowPut);

void BM_GroupByWindowPut(benchmark::State& state) {
  const int64_t keys = state.range(0);
  WindowOperator op(
      WindowSpec::Tuples(4, 1).GroupBy({"k"}).DeleteUsedEvents(true));
  std::vector<Window> out;
  uint64_t seq = 0;
  for (auto _ : state) {
    out.clear();
    ++seq;
    CWF_CHECK(op.Put(KeyedEvent(static_cast<int64_t>(seq) % keys,
                                static_cast<int64_t>(seq), seq),
                     &out)
                  .ok());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(keys) + " groups");
}
BENCHMARK(BM_GroupByWindowPut)->Arg(10)->Arg(1000)->Arg(100000);

void BM_TimeWindowDeadlineIndex(benchmark::State& state) {
  // NextDeadline() must stay O(1) regardless of group count.
  const int64_t keys = state.range(0);
  WindowOperator op(WindowSpec::Time(Seconds(60), Seconds(60))
                        .GroupBy({"k"})
                        .DeleteUsedEvents(true));
  std::vector<Window> out;
  uint64_t seq = 0;
  for (int64_t k = 0; k < keys; ++k) {
    ++seq;
    CWF_CHECK(op.Put(KeyedEvent(k, 1000, seq), &out).ok());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.NextDeadline());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(keys) + " groups");
}
BENCHMARK(BM_TimeWindowDeadlineIndex)->Arg(10)->Arg(10000);

RecordPtr WideRecord(int64_t width) {
  auto rec = std::make_shared<Record>();
  for (int64_t i = 0; i < width; ++i) {
    rec->Set("field" + std::to_string(i), Value(i));
  }
  return rec;
}

void BM_RecordGetByName(benchmark::State& state) {
  // Linear scan with string comparison per access; the last field is the
  // worst case and the one group-by/join key extraction hits for tuples
  // whose key trails the payload.
  const int64_t width = state.range(0);
  RecordPtr rec = WideRecord(width);
  const std::string last = "field" + std::to_string(width - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rec->Get(last));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(width) + " fields");
}
BENCHMARK(BM_RecordGetByName)->Arg(4)->Arg(8)->Arg(16);

void BM_RecordValueAtByIndex(benchmark::State& state) {
  // The schema-resolved path: RecordSchema::IndexOf once (off the hot
  // loop), then O(1) positional access per tuple.
  const int64_t width = state.range(0);
  RecordPtr rec = WideRecord(width);
  RecordSchema schema;
  for (int64_t i = 0; i < width; ++i) {
    schema.Int("field" + std::to_string(i));
  }
  const int index = schema.IndexOf("field" + std::to_string(width - 1));
  CWF_CHECK(index >= 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rec->ValueAt(static_cast<size_t>(index)));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(width) + " fields");
}
BENCHMARK(BM_RecordValueAtByIndex)->Arg(4)->Arg(8)->Arg(16);

void BM_SchemaIndexOf(benchmark::State& state) {
  // The resolution step itself (hash lookup in the schema's index map), to
  // show the by-name cost that moved off the per-tuple path.
  const int64_t width = state.range(0);
  RecordSchema schema;
  for (int64_t i = 0; i < width; ++i) {
    schema.Int("field" + std::to_string(i));
  }
  const std::string last = "field" + std::to_string(width - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schema.IndexOf(last));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(width) + " fields");
}
BENCHMARK(BM_SchemaIndexOf)->Arg(4)->Arg(16);

// PushChannel deposit paths: per-tuple TryPush (one lock round-trip per
// tuple) against TryPushBatch (one lock per batch) — the contrast the
// ingest server's staging drain exploits.
void BM_PushChannelTryPush(benchmark::State& state) {
  PushChannel ch;
  uint64_t seq = 0;
  for (auto _ : state) {
    ++seq;
    benchmark::DoNotOptimize(
        ch.TryPush(Token(static_cast<int64_t>(seq)),
                   Timestamp(static_cast<int64_t>(seq))));
    if (seq % 4096 == 0) {
      ch.PopArrived(Timestamp::Max());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PushChannelTryPush);

void BM_PushChannelTryPushBatch(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  PushChannel ch;
  std::vector<TraceEntry> entries(batch);
  uint64_t seq = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (size_t i = 0; i < batch; ++i) {
      ++seq;
      entries[i] = {Timestamp(static_cast<int64_t>(seq)),
                    Token(static_cast<int64_t>(seq))};
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(ch.TryPushBatch(entries));
    state.PauseTiming();
    ch.PopArrived(Timestamp::Max());
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
  state.SetLabel("batch=" + std::to_string(batch));
}
BENCHMARK(BM_PushChannelTryPushBatch)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
}  // namespace cwf

// Window-operator micro-benchmarks: put() throughput across window kinds
// and group-by fan-out (the paper's discussion flags window-based actors as
// the performance-critical component).

#include <benchmark/benchmark.h>

#include "window/window_operator.h"

namespace cwf {
namespace {

CWEvent IntEvent(int64_t v, int64_t ts_us, uint64_t seq) {
  CWEvent e;
  e.token = Token(v);
  e.timestamp = Timestamp(ts_us);
  e.wave = WaveTag::Root(seq);
  e.last_in_wave = true;
  e.seq = seq;
  return e;
}

CWEvent KeyedEvent(int64_t key, int64_t ts_us, uint64_t seq) {
  auto rec = std::make_shared<Record>();
  rec->Set("k", Value(key));
  rec->Set("v", Value(static_cast<int64_t>(seq)));
  CWEvent e;
  e.token = Token(RecordPtr(std::move(rec)));
  e.timestamp = Timestamp(ts_us);
  e.wave = WaveTag::Root(seq);
  e.last_in_wave = true;
  e.seq = seq;
  return e;
}

void BM_TupleWindowPut(benchmark::State& state) {
  WindowOperator op(
      WindowSpec::Tuples(state.range(0), 1));
  std::vector<Window> out;
  uint64_t seq = 0;
  for (auto _ : state) {
    out.clear();
    ++seq;
    CWF_CHECK(op.Put(IntEvent(1, static_cast<int64_t>(seq), seq), &out).ok());
    benchmark::DoNotOptimize(out);
    if (seq % 4096 == 0) {
      op.DrainExpired();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TupleWindowPut)->Arg(2)->Arg(4)->Arg(32);

void BM_TimeWindowPut(benchmark::State& state) {
  WindowOperator op(WindowSpec::Time(Seconds(60), Seconds(60))
                        .DeleteUsedEvents(true));
  std::vector<Window> out;
  uint64_t seq = 0;
  for (auto _ : state) {
    out.clear();
    ++seq;
    CWF_CHECK(op.Put(IntEvent(1, static_cast<int64_t>(seq) * 1000, seq), &out)
                  .ok());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimeWindowPut);

void BM_GroupByWindowPut(benchmark::State& state) {
  const int64_t keys = state.range(0);
  WindowOperator op(
      WindowSpec::Tuples(4, 1).GroupBy({"k"}).DeleteUsedEvents(true));
  std::vector<Window> out;
  uint64_t seq = 0;
  for (auto _ : state) {
    out.clear();
    ++seq;
    CWF_CHECK(op.Put(KeyedEvent(static_cast<int64_t>(seq) % keys,
                                static_cast<int64_t>(seq), seq),
                     &out)
                  .ok());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(keys) + " groups");
}
BENCHMARK(BM_GroupByWindowPut)->Arg(10)->Arg(1000)->Arg(100000);

void BM_TimeWindowDeadlineIndex(benchmark::State& state) {
  // NextDeadline() must stay O(1) regardless of group count.
  const int64_t keys = state.range(0);
  WindowOperator op(WindowSpec::Time(Seconds(60), Seconds(60))
                        .GroupBy({"k"})
                        .DeleteUsedEvents(true));
  std::vector<Window> out;
  uint64_t seq = 0;
  for (int64_t k = 0; k < keys; ++k) {
    ++seq;
    CWF_CHECK(op.Put(KeyedEvent(k, 1000, seq), &out).ok());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.NextDeadline());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(keys) + " groups");
}
BENCHMARK(BM_TimeWindowDeadlineIndex)->Arg(10)->Arg(10000);

}  // namespace
}  // namespace cwf

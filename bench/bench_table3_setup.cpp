// Table 3: the experimental setup every LRB bench runs with.

#include <cstdio>

#include "lrb/harness.h"

using namespace cwf;
using namespace cwf::lrb;

int main() {
  ExperimentOptions def;
  std::printf("Table 3: experimental setup\n\n");
  std::printf("  %-34s %s\n", "Workload", "Linear Road, variable tolling");
  std::printf("  %-34s %.1f highways (1 xway, 1 direction)\n",
              "Workload L-rating", def.workload.l_rating);
  std::printf("  %-34s %.0f -> %.0f reports/sec (slope %.2f/s)\n",
              "Input rate ramp", def.workload.initial_rate,
              def.workload.max_rate, def.workload.rate_slope_per_sec);
  std::printf("  %-34s %lld sec\n", "Experiment duration",
              static_cast<long long>(def.workload.duration / Seconds(1)));
  std::printf("  %-34s %d internal actor iterations\n",
              "QBS source scheduling interval", def.qbs.source_interval);
  std::printf("  %-34s 500, 1000, 5000, 10000, 20000\n",
              "Basic quantum (QBS) (us)");
  std::printf("  %-34s 5000, 10000, 20000, 40000\n",
              "Basic quantum (RR) (us)");
  std::printf("  %-34s 5 (output actors), 10 (statistics/detection)\n",
              "Priorities used (QBS)");
  std::printf("  %-34s virtual clock + calibrated cost model\n",
              "Timing substrate");
  std::printf("  %-34s %lld us ctx switch, %lld us/event sync\n",
              "PNCWF modeled thread overheads",
              static_cast<long long>(def.cost_model.context_switch_overhead),
              static_cast<long long>(def.cost_model.sync_per_event_overhead));
  return 0;
}

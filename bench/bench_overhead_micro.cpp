// Micro-benchmarks for the paper's first evaluation goal: "determine if
// there are any performance penalties in implementing scheduling policies
// using our STAFiLOS framework" — host-time costs of the framework's
// moving parts.

#include <benchmark/benchmark.h>

#include "actors/library.h"
#include "directors/scwf_director.h"
#include "stafilos/edf_scheduler.h"
#include "stafilos/fifo_scheduler.h"
#include "stafilos/qbs_scheduler.h"
#include "stafilos/rb_scheduler.h"
#include "stafilos/rr_scheduler.h"
#include "stream/stream_source.h"

namespace cwf {
namespace {

// Baseline: invoking actor logic directly, no framework.
void BM_DirectActorInvocation(benchmark::State& state) {
  MapActor map("m", [](const Token& t) { return Token(t.AsInt() + 1); });
  map.in()->SetReceiver(0, std::make_unique<QueueReceiver>(map.in()));
  ExecutionContext ctx;
  VirtualClock clock;
  ctx.clock = &clock;
  CWF_CHECK(map.Initialize(&ctx).ok());
  CWEvent e(Token(1), Timestamp(0), WaveTag::Root(1));
  for (auto _ : state) {
    CWF_CHECK(map.in()->receiver(0)->Put(e).ok());
    map.BeginFiring();
    CWF_CHECK(map.Fire().ok());
    benchmark::DoNotOptimize(map.TakePendingOutputs());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectActorInvocation);

std::unique_ptr<AbstractScheduler> MakeSched(int kind) {
  switch (kind) {
    case 0:
      return std::make_unique<FIFOScheduler>();
    case 1:
      return std::make_unique<QBSScheduler>();
    case 2:
      return std::make_unique<RRScheduler>();
    case 3:
      return std::make_unique<RBScheduler>();
    default:
      return std::make_unique<EDFScheduler>();
  }
}

const char* SchedName(int kind) {
  switch (kind) {
    case 0:
      return "FIFO";
    case 1:
      return "QBS";
    case 2:
      return "RR";
    case 3:
      return "RB";
    default:
      return "EDF";
  }
}

// Full STAFiLOS path: source -> map -> sink under the SCWF director; cost
// per tuple includes enqueue, scheduling decision, delivery and firing.
void BM_ScwfDispatchPerTuple(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const size_t batch = 1024;
  for (auto _ : state) {
    state.PauseTiming();
    Workflow wf("w");
    auto feed = std::make_shared<PushChannel>();
    auto* src = wf.AddActor<StreamSourceActor>("src", feed);
    auto* map = wf.AddActor<MapActor>(
        "map", [](const Token& t) { return Token(t.AsInt() + 1); });
    auto* sink = wf.AddActor<NullSink>("sink");
    CWF_CHECK(wf.Connect(src->out(), map->in()).ok());
    CWF_CHECK(wf.Connect(map->out(), sink->in()).ok());
    for (size_t i = 0; i < batch; ++i) {
      feed->Push(Token(static_cast<int64_t>(i)), Timestamp(0));
    }
    feed->Close();
    VirtualClock clock;
    CostModel cm;
    SCWFDirector d(MakeSched(kind));
    CWF_CHECK(d.Initialize(&wf, &clock, &cm).ok());
    state.ResumeTiming();
    CWF_CHECK(d.Run(Timestamp::Max()).ok());
    benchmark::DoNotOptimize(sink->consumed_events());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.SetLabel(SchedName(kind));
}
BENCHMARK(BM_ScwfDispatchPerTuple)->DenseRange(0, 4);

// The scheduling decision in isolation.
void BM_GetNextActorDecision(benchmark::State& state) {
  Workflow wf("w");
  auto feed = std::make_shared<PushChannel>();
  wf.AddActor<StreamSourceActor>("src", feed);
  std::vector<MapActor*> actors;
  for (int i = 0; i < 10; ++i) {
    actors.push_back(wf.AddActor<MapActor>(
        "a" + std::to_string(i), [](const Token& t) { return t; }));
  }
  VirtualClock clock;
  CostModel cm;
  SCWFDirector d(std::make_unique<QBSScheduler>());
  CWF_CHECK(d.Initialize(&wf, &clock, &cm).ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.scheduler()->GetNextActor());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GetNextActorDecision);

}  // namespace
}  // namespace cwf

// Ingest-scale load driver: thousands of concurrent TCP clients pushing
// tuples into a net::IngestServer, verifying the tentpole contract —
// bounded channel + staging + paused reads = zero tuple loss under
// overload — and reporting throughput in the canonical BENCH json schema.
//
// Self-contained mode (default) owns the whole path: IngestServer over a
// bounded PushChannel with a consumer thread that can be slowed down
// (--consumer-delay-us) to force backpressure; every tuple the senders
// write must come out of the channel. --sweep runs a comma-separated list
// of connection counts and reports per-point throughput.
//
// External mode (--connect PORT) drives an already-running server (e.g.
// `cwf_lrb_serve --listen`) with LRB position-report lines and, when
// --metrics PORT is given, scrapes its /metrics endpoint to verify the
// cwf_ingest_* counters moved by exactly the number of tuples sent.
//
// Usage:
//   bench_ingest_scale [--connections N] [--tuples-per-conn N]
//                      [--sender-threads N] [--shards N] [--capacity N]
//                      [--staging-limit N] [--consumer-delay-us N]
//                      [--consumer-batch N] [--rate-per-conn R] [--binary]
//                      [--sweep N1,N2,...] [--bench FILE] [--expect-pauses]
//                      [--connect PORT] [--metrics PORT] [--host HOST]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "core/clock.h"
#include "harness.h"
#include "net/frame.h"
#include "net/ingest_server.h"
#include "stream/push_channel.h"

namespace {

struct CliOptions {
  int connections = 1000;
  int tuples_per_conn = 200;
  int sender_threads = 8;
  int shards = 2;
  int capacity = 1024;
  int staging_limit = 128;
  int consumer_delay_us = 0;
  int consumer_batch = 256;
  double rate_per_conn = 0;  // tuples/s per connection; 0 = unpaced
  bool binary = false;
  std::string sweep;           // "100,500,1000"
  std::string bench_path;
  bool expect_pauses = false;
  int connect_port = 0;   // external mode when > 0
  int metrics_port = 0;   // external mode /metrics scrape
  int verify_timeout_s = 60;  // wait for the server-side drain this long
  std::string host = "127.0.0.1";
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--connections N] [--tuples-per-conn N] "
      "[--sender-threads N] [--shards N] [--capacity N] [--staging-limit N] "
      "[--consumer-delay-us N] [--consumer-batch N] [--rate-per-conn R] "
      "[--binary] [--sweep N1,N2,...] [--bench FILE] [--expect-pauses] "
      "[--connect PORT] [--metrics PORT] [--verify-timeout-s S] "
      "[--host HOST]\n",
      argv0);
  return 2;
}

int ConnectTo(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  CWF_CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  CWF_CHECK(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1);
  // Retry: a thousand simultaneous connects can transiently overflow the
  // accept backlog.
  for (int attempt = 0;; ++attempt) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    CWF_CHECK(attempt < 100);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::write(fd, data + sent, size - sent);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    CWF_CHECK(n > 0);
    sent += static_cast<size_t>(n);
  }
}

/// One tuple on the wire. External mode sends full LRB position reports so
/// a live `cwf_lrb_serve --listen` accepts them against its schema;
/// self-contained mode uses a compact two-field record.
std::string TupleLine(bool lrb, int conn, int seq) {
  if (lrb) {
    return "time=i:" + std::to_string(seq / 10) +
           ";car=i:" + std::to_string(conn) + ";speed=d:55.5;xway=i:0;" +
           "lane=i:1;dir=i:0;seg=i:" + std::to_string(seq % 100) +
           ";pos=i:" + std::to_string(seq * 10) + "\n";
  }
  return "conn=i:" + std::to_string(conn) + ";seq=i:" + std::to_string(seq) +
         "\n";
}

/// Drives `conns` connections (split across sender threads) for
/// `tuples_per_conn` tuples each. Returns the total tuples written.
uint64_t DriveLoad(const CliOptions& options, uint16_t port, int conns,
                   bool lrb_payload) {
  std::atomic<uint64_t> sent{0};
  std::vector<std::thread> threads;
  const int nthreads = std::min(options.sender_threads, conns);
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<int> fds;
      for (int c = t; c < conns; c += nthreads) {
        fds.push_back(ConnectTo(options.host, port));
      }
      const double per_conn_interval_s =
          options.rate_per_conn > 0 ? 1.0 / options.rate_per_conn : 0;
      const auto start = std::chrono::steady_clock::now();
      // Round-robin over this thread's connections: one tuple per
      // connection per round keeps all of them concurrently active.
      for (int round = 0; round < options.tuples_per_conn; ++round) {
        for (size_t i = 0; i < fds.size(); ++i) {
          const int conn = t + static_cast<int>(i) * nthreads;
          const std::string line = TupleLine(lrb_payload, conn, round);
          if (options.binary) {
            const std::string frame = cwf::net::EncodeFrame(
                0, std::string_view(line.data(), line.size() - 1));
            SendAll(fds[i], frame.data(), frame.size());
          } else {
            SendAll(fds[i], line.data(), line.size());
          }
          sent.fetch_add(1, std::memory_order_relaxed);
        }
        if (per_conn_interval_s > 0) {
          const auto target =
              start + std::chrono::duration<double>(per_conn_interval_s *
                                                    (round + 1));
          std::this_thread::sleep_until(target);
        }
      }
      for (const int fd : fds) {
        ::close(fd);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  return sent.load();
}

bool WaitFor(const std::function<bool()>& cond, int timeout_ms) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (cond()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

struct PhaseResult {
  int connections = 0;
  uint64_t sent = 0;
  uint64_t consumed = 0;
  uint64_t pauses = 0;
  uint64_t paused_us = 0;
  uint64_t staged_dropped = 0;
  double wall_s = 0;
  bool zero_loss = false;
};

/// One self-contained phase: fresh server + channel + consumer, `conns`
/// clients, full verification.
PhaseResult RunSelfContainedPhase(const CliOptions& options, int conns) {
  cwf::RealClock clock;
  auto channel = std::make_shared<cwf::PushChannel>();
  channel->SetCapacity(static_cast<size_t>(options.capacity));

  cwf::net::IngestServer::Options server_options;
  server_options.shards = options.shards;
  server_options.staging_limit = static_cast<size_t>(options.staging_limit);
  server_options.max_connections = static_cast<size_t>(conns) + 64;
  cwf::net::IngestServer server(&clock, server_options);
  server.AddChannel(0, channel, "bench");
  CWF_CHECK(server.Start(0).ok());

  std::atomic<uint64_t> consumed{0};
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto batch = channel->PopArrived(
          cwf::Timestamp::Max(), static_cast<size_t>(options.consumer_batch));
      if (batch.empty()) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        continue;
      }
      consumed.fetch_add(batch.size(), std::memory_order_relaxed);
      if (options.consumer_delay_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(options.consumer_delay_us));
      }
    }
    // Final drain: everything staged in the server flushes into the
    // channel as the consumer frees space, so keep popping until the
    // expected count arrives (the caller already waited for it).
    for (;;) {
      const auto batch = channel->PopArrived(cwf::Timestamp::Max());
      if (batch.empty()) {
        break;
      }
      consumed.fetch_add(batch.size(), std::memory_order_relaxed);
    }
  });

  const auto start = std::chrono::steady_clock::now();
  const uint64_t sent = DriveLoad(options, server.port(), conns,
                                  /*lrb_payload=*/false);
  // All senders closed; wait until every tuple has surfaced at the
  // consumer (staging drains as the consumer frees channel space).
  const bool drained =
      WaitFor([&] { return consumed.load() >= sent; }, 30000);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  done.store(true, std::memory_order_release);
  consumer.join();
  server.Stop();

  PhaseResult result;
  result.connections = conns;
  result.sent = sent;
  result.consumed = consumed.load();
  result.pauses = server.backpressure_pauses();
  result.paused_us = server.backpressure_paused_us();
  result.staged_dropped = server.staged_dropped();
  result.wall_s = wall_s;
  result.zero_loss = drained && result.consumed == sent &&
                     result.staged_dropped == 0 &&
                     server.parse_errors() == 0 && server.schema_rejects() == 0;
  std::printf(
      "conns=%5d sent=%9llu consumed=%9llu pauses=%6llu paused_ms=%7.1f "
      "wall=%6.2fs rate=%9.0f/s %s\n",
      conns, static_cast<unsigned long long>(sent),
      static_cast<unsigned long long>(result.consumed),
      static_cast<unsigned long long>(result.pauses),
      result.paused_us / 1000.0, wall_s,
      wall_s > 0 ? sent / wall_s : 0,
      result.zero_loss ? "ZERO-LOSS" : "LOSS DETECTED");
  std::fflush(stdout);
  return result;
}

/// Fetches http://host:port/metrics and returns the body ("" on failure).
std::string ScrapeMetrics(const std::string& host, int port) {
  const int fd = ConnectTo(host, static_cast<uint16_t>(port));
  const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
  SendAll(fd, request, sizeof(request) - 1);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return "";
  }
  return response.substr(header_end + 4);
}

/// Last-token value of the first exposition line starting with `prefix`.
double MetricValue(const std::string& body, const std::string& prefix) {
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) {
      eol = body.size();
    }
    const std::string line = body.substr(pos, eol - pos);
    if (line.rfind(prefix, 0) == 0) {
      const size_t space = line.rfind(' ');
      if (space != std::string::npos) {
        return std::strtod(line.c_str() + space + 1, nullptr);
      }
    }
    pos = eol + 1;
  }
  return 0;
}

int RunExternal(const CliOptions& options, cwf::bench::BenchResult* bench) {
  std::string before;
  if (options.metrics_port > 0) {
    before = ScrapeMetrics(options.host, options.metrics_port);
  }
  const auto start = std::chrono::steady_clock::now();
  const uint64_t sent =
      DriveLoad(options, static_cast<uint16_t>(options.connect_port),
                options.connections, /*lrb_payload=*/true);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf("external: sent %llu tuples over %d connections in %.2fs "
              "(%.0f/s)\n",
              static_cast<unsigned long long>(sent), options.connections,
              wall_s, wall_s > 0 ? sent / wall_s : 0);
  bench->wall_s = wall_s;
  bench->throughput_per_s = wall_s > 0 ? sent / wall_s : 0;
  bench->metrics["tuples_sent"] = static_cast<double>(sent);

  int exit_code = 0;
  if (options.metrics_port > 0) {
    // The server counts tuples as they clear staging into the channel;
    // give the drain a moment before the closing scrape.
    // The drain rate is the workflow's consumption rate (backpressure
    // working as intended), so the wait is bounded by --verify-timeout-s,
    // not a fixed poll count.
    const std::string kTuples = "cwf_ingest_tuples_total";
    const std::string kPauses = "cwf_ingest_backpressure_pauses_total";
    double delta = 0;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::seconds(options.verify_timeout_s);
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      const std::string after = ScrapeMetrics(options.host,
                                              options.metrics_port);
      delta = MetricValue(after, kTuples) - MetricValue(before, kTuples);
      if (delta >= static_cast<double>(sent)) {
        bench->metrics["backpressure_pauses"] = MetricValue(after, kPauses);
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        break;
      }
    }
    bench->metrics["tuples_counted_by_server"] = delta;
    if (delta != static_cast<double>(sent)) {
      std::fprintf(stderr,
                   "bench_ingest_scale: LOSS: server counted %.0f of %llu "
                   "tuples\n",
                   delta, static_cast<unsigned long long>(sent));
      exit_code = 1;
    } else {
      std::printf("server counted all %llu tuples: ZERO-LOSS\n",
                  static_cast<unsigned long long>(sent));
    }
  }
  return exit_code;
}

std::vector<int> ParseSweep(const std::string& sweep) {
  std::vector<int> points;
  size_t pos = 0;
  while (pos < sweep.size()) {
    points.push_back(std::atoi(sweep.c_str() + pos));
    const size_t comma = sweep.find(',', pos);
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connections" && i + 1 < argc) {
      options.connections = std::atoi(argv[++i]);
    } else if (arg == "--tuples-per-conn" && i + 1 < argc) {
      options.tuples_per_conn = std::atoi(argv[++i]);
    } else if (arg == "--sender-threads" && i + 1 < argc) {
      options.sender_threads = std::atoi(argv[++i]);
    } else if (arg == "--shards" && i + 1 < argc) {
      options.shards = std::atoi(argv[++i]);
    } else if (arg == "--capacity" && i + 1 < argc) {
      options.capacity = std::atoi(argv[++i]);
    } else if (arg == "--staging-limit" && i + 1 < argc) {
      options.staging_limit = std::atoi(argv[++i]);
    } else if (arg == "--consumer-delay-us" && i + 1 < argc) {
      options.consumer_delay_us = std::atoi(argv[++i]);
    } else if (arg == "--consumer-batch" && i + 1 < argc) {
      options.consumer_batch = std::atoi(argv[++i]);
    } else if (arg == "--rate-per-conn" && i + 1 < argc) {
      options.rate_per_conn = std::atof(argv[++i]);
    } else if (arg == "--binary") {
      options.binary = true;
    } else if (arg == "--sweep" && i + 1 < argc) {
      options.sweep = argv[++i];
    } else if (arg == "--bench" && i + 1 < argc) {
      options.bench_path = argv[++i];
    } else if (arg == "--expect-pauses") {
      options.expect_pauses = true;
    } else if (arg == "--connect" && i + 1 < argc) {
      options.connect_port = std::atoi(argv[++i]);
    } else if (arg == "--metrics" && i + 1 < argc) {
      options.metrics_port = std::atoi(argv[++i]);
    } else if (arg == "--verify-timeout-s" && i + 1 < argc) {
      options.verify_timeout_s = std::atoi(argv[++i]);
    } else if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.connections < 1 || options.tuples_per_conn < 1 ||
      options.sender_threads < 1 || options.shards < 1 ||
      options.capacity < 1 || options.staging_limit < 1 ||
      options.consumer_batch < 1) {
    return Usage(argv[0]);
  }

  cwf::bench::BenchResult bench;
  bench.bench = "ingest_scale";
  bench.config["connections"] = std::to_string(options.connections);
  bench.config["tuples_per_conn"] = std::to_string(options.tuples_per_conn);
  bench.config["shards"] = std::to_string(options.shards);
  bench.config["capacity"] = std::to_string(options.capacity);
  bench.config["staging_limit"] = std::to_string(options.staging_limit);
  bench.config["consumer_delay_us"] =
      std::to_string(options.consumer_delay_us);
  bench.config["protocol"] = options.binary ? "binary" : "line";
  bench.config["mode"] =
      options.connect_port > 0 ? "external" : "self_contained";

  int exit_code = 0;
  if (options.connect_port > 0) {
    exit_code = RunExternal(options, &bench);
  } else {
    std::vector<int> points = options.sweep.empty()
                                  ? std::vector<int>{options.connections}
                                  : ParseSweep(options.sweep);
    PhaseResult last;
    for (const int conns : points) {
      const PhaseResult phase = RunSelfContainedPhase(options, conns);
      bench.metrics["tuples_per_s_conns_" + std::to_string(conns)] =
          phase.wall_s > 0 ? phase.sent / phase.wall_s : 0;
      if (!phase.zero_loss) {
        exit_code = 1;
      }
      last = phase;
    }
    bench.wall_s = last.wall_s;
    bench.throughput_per_s =
        last.wall_s > 0 ? last.sent / last.wall_s : 0;
    bench.metrics["tuples_sent"] = static_cast<double>(last.sent);
    bench.metrics["tuples_consumed"] = static_cast<double>(last.consumed);
    bench.metrics["backpressure_pauses"] = static_cast<double>(last.pauses);
    bench.metrics["backpressure_paused_ms"] = last.paused_us / 1000.0;
    bench.metrics["zero_loss"] = last.zero_loss ? 1 : 0;
    if (options.expect_pauses && last.pauses == 0) {
      std::fprintf(stderr,
                   "bench_ingest_scale: expected backpressure pauses but "
                   "observed none — overload knob too weak\n");
      exit_code = 1;
    }
  }

  if (!options.bench_path.empty()) {
    const cwf::Status s =
        cwf::bench::WriteBenchJson(bench, options.bench_path);
    if (!s.ok()) {
      std::fprintf(stderr, "bench_ingest_scale: bench write failed: %s\n",
                   s.ToString().c_str());
      exit_code = 1;
    }
  }
  return exit_code;
}

// Extension bench: load shedding under overload (the integration point the
// paper's discussion proposes: "the integrated DSMSs can potentially be
// tuned to also support load shedding under overloading situations").
// Drop-tail shedding at the scheduler queues bounds response time at the
// cost of result loss.

#include <cstdio>

#include "directors/scwf_director.h"
#include "lrb/harness.h"

using namespace cwf;
using namespace cwf::lrb;

int main() {
  std::printf("Extension: load shedding under overload (QBS-q500)\n\n");
  std::printf("%-18s %12s %12s %12s %14s\n", "queue cap", "avg_resp_s",
              "p95_resp_s", "tolls", "shed_windows");
  for (size_t cap : {size_t{0}, size_t{2000}, size_t{500}, size_t{100}}) {
    ExperimentOptions opt;
    opt.scheduler = SchedulerKind::kQBS;
    auto sched = MakeScheduler(opt);
    sched->SetLoadShedding({cap});
    AbstractScheduler* sp = sched.get();

    Generator gen(opt.workload);
    Trace trace = gen.Generate();
    auto feed = std::make_shared<PushChannel>();
    feed->PushTrace(trace);
    feed->Close();
    auto app = BuildLRBApplication(feed).value();
    VirtualClock clock;
    SCWFDirector d(std::move(sched));
    CWF_CHECK(d.Initialize(app.workflow.get(), &clock, &opt.cost_model).ok());
    CWF_CHECK(d.Run(trace.EndTime() + Seconds(30)).ok());

    char label[32];
    if (cap == 0) {
      std::snprintf(label, sizeof(label), "off");
    } else {
      std::snprintf(label, sizeof(label), "%zu windows", cap);
    }
    std::printf("%-18s %12.3f %12.3f %12zu %14llu\n", label,
                app.toll_series->OverallAvgSeconds(),
                app.toll_series->PercentileSeconds(95),
                app.toll_series->count(),
                static_cast<unsigned long long>(sp->shed_windows()));
  }
  std::printf(
      "\nExpected shape: tighter caps bound the response time (at the cost\n"
      "of shed results); with shedding off the overload phase queues grow\n"
      "without bound and response time ramps to tens of seconds.\n");
  return 0;
}

// Ablation (paper §4.3): how much of the Rate-Based scheduler's response-
// time loss is explained by its lack of special source treatment? The paper
// attributes RB's poor showing to tokens "waiting for a longer period of
// time to enter the workflow"; here RB runs with the regular-interval
// source dispatch switched on and off.

#include <cstdio>

#include "lrb/harness.h"

using namespace cwf;
using namespace cwf::lrb;

int main() {
  std::printf("Ablation: source-actor special treatment (paper §4.3)\n\n");
  std::printf("%-28s %14s %14s %12s\n", "configuration", "avg_resp_s",
              "p95_resp_s", "thrash@2s");
  struct Row {
    const char* label;
    SchedulerKind kind;
    int rb_interval;
  };
  const Row rows[] = {
      {"RB (paper: no special src)", SchedulerKind::kRB, 0},
      {"RB + source interval 5", SchedulerKind::kRB, 5},
      {"QBS-q500 (interval 5)", SchedulerKind::kQBS, 0},
  };
  for (const Row& row : rows) {
    ExperimentOptions opt;
    opt.scheduler = row.kind;
    opt.rb.source_interval = row.rb_interval;
    auto res = RunLRBExperiment(opt);
    if (!res.ok()) {
      std::printf("%-28s FAILED: %s\n", row.label,
                  res.status().ToString().c_str());
      continue;
    }
    std::printf("%-28s %14.3f %14.3f %12.0f\n", row.label,
                res->toll_avg_response_s, res->toll_p95_response_s,
                res->ThrashTimeSeconds(2.0));
  }
  std::printf(
      "\nExpected shape: enabling the interval moves RB toward QBS/RR —\n"
      "most of RB's early response-time penalty comes from tokens queueing\n"
      "outside the workflow, exactly as the paper argues.\n");
  return 0;
}

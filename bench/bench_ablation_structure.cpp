// Ablation: the paper's two-level hierarchy (accident detection as a
// DDF sub-workflow) vs a flattened top-level graph — the scheduling
// granularity changes, the results must not.

#include <cstdio>

#include "lrb/harness.h"

using namespace cwf;
using namespace cwf::lrb;

int main() {
  std::printf("Ablation: hierarchical (composite+DDF) vs flat structure\n\n");
  std::printf("%-16s %12s %12s %12s %12s\n", "structure", "tolls",
              "accidents", "avg_resp_s", "firings");
  for (bool hierarchical : {true, false}) {
    ExperimentOptions opt;
    opt.scheduler = SchedulerKind::kQBS;
    opt.hierarchical = hierarchical;
    // Stay below saturation so both variants process the full stream and
    // the result invariant (identical tolls/accidents) is observable; the
    // remaining delta is pure structural overhead.
    opt.workload.duration = Seconds(300);
    auto res = RunLRBExperiment(opt);
    if (!res.ok()) {
      std::printf("%-16s FAILED: %s\n", hierarchical ? "hierarchical" : "flat",
                  res.status().ToString().c_str());
      continue;
    }
    std::printf("%-16s %12llu %12llu %12.3f %12llu\n",
                hierarchical ? "hierarchical" : "flat",
                static_cast<unsigned long long>(res->tolls_calculated),
                static_cast<unsigned long long>(res->accidents_recorded),
                res->toll_avg_response_s,
                static_cast<unsigned long long>(res->total_firings));
  }
  std::printf(
      "\nInvariant (sub-saturation): identical tolls/accidents; the flat\n"
      "variant exposes the detection actors to the top-level scheduler\n"
      "individually and pays per-actor instead of composite dispatch costs.\n");
  return 0;
}

#include "harness.h"

#include <sys/resource.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace cwf::bench {
namespace {

double Finite(double v) { return std::isfinite(v) ? v : 0; }

/// %.6g formatting keeps the files diffable (no trailing float noise).
std::string Num(double v) {
  v = Finite(v);
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string Quote(const std::string& v) {
  std::string out = "\"";
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  out += '"';
  return out;
}

std::string RenderSummary(const LatencySummary& s) {
  std::ostringstream out;
  out << "{\"count\":" << s.count << ",\"mean\":" << Num(s.mean)
      << ",\"p50\":" << Num(s.p50) << ",\"p95\":" << Num(s.p95)
      << ",\"p99\":" << Num(s.p99) << ",\"max\":" << Num(s.max) << "}";
  return out.str();
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough for the canonical schema round-trip and
// bench_compare; no dependencies, strict about structure, tolerant of
// unknown keys.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  double NumberOr(double fallback) const {
    return kind == Kind::kNumber ? number : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    Status st = ParseValue(&v);
    if (!st.ok()) {
      return st;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters");
    }
    return v;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject(out);
    }
    if (c == '[') {
      return ParseArray(out);
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      pos_ += 5;
      return Status::OK();
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return Status::OK();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    if (Consume('}')) {
      return Status::OK();
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      CWF_RETURN_NOT_OK(ParseString(&key));
      if (!Consume(':')) {
        return Error("expected ':'");
      }
      JsonValue value;
      CWF_RETURN_NOT_OK(ParseValue(&value));
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return Status::OK();
      }
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    if (Consume(']')) {
      return Status::OK();
    }
    for (;;) {
      JsonValue value;
      CWF_RETURN_NOT_OK(ParseValue(&value));
      out->array.push_back(std::move(value));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return Status::OK();
      }
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return Status::OK();
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case 'n':
          *out += '\n';
          break;
        case 't':
          *out += '\t';
          break;
        case '"':
        case '\\':
        case '/':
          *out += esc;
          break;
        default:
          return Error("unsupported escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("expected a value");
    }
    try {
      out->number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      return Error("malformed number");
    }
    out->kind = JsonValue::Kind::kNumber;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

LatencySummary SummaryFrom(const JsonValue& v) {
  LatencySummary s;
  if (const JsonValue* c = v.Find("count")) {
    s.count = static_cast<uint64_t>(c->NumberOr(0));
  }
  if (const JsonValue* c = v.Find("mean")) s.mean = c->NumberOr(0);
  if (const JsonValue* c = v.Find("p50")) s.p50 = c->NumberOr(0);
  if (const JsonValue* c = v.Find("p95")) s.p95 = c->NumberOr(0);
  if (const JsonValue* c = v.Find("p99")) s.p99 = c->NumberOr(0);
  if (const JsonValue* c = v.Find("max")) s.max = c->NumberOr(0);
  return s;
}

}  // namespace

const char* GitSha() {
#ifdef CWF_GIT_SHA
  return CWF_GIT_SHA;
#else
  return "unknown";
#endif
}

long PeakRssKb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
  return usage.ru_maxrss;  // KiB on Linux
}

LatencySummary FromHistogram(const obs::HistogramSnapshot& snapshot) {
  LatencySummary s;
  s.count = snapshot.count;
  s.mean = Finite(snapshot.mean);
  s.p50 = Finite(snapshot.p50);
  s.p95 = Finite(snapshot.p95);
  s.p99 = Finite(snapshot.p99);
  s.max = static_cast<double>(snapshot.max);
  return s;
}

std::string RenderBenchJson(const BenchResult& result) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": " << kSchemaVersion << ",\n";
  out << "  \"bench\": " << Quote(result.bench) << ",\n";
  out << "  \"git_sha\": "
      << Quote(result.git_sha.empty() ? GitSha() : result.git_sha) << ",\n";
  out << "  \"config\": {";
  bool first = true;
  for (const auto& [key, value] : result.config) {
    out << (first ? "" : ", ") << Quote(key) << ": " << Quote(value);
    first = false;
  }
  out << "},\n";
  out << "  \"wall_s\": " << Num(result.wall_s) << ",\n";
  out << "  \"throughput_per_s\": " << Num(result.throughput_per_s) << ",\n";
  out << "  \"peak_rss_kb\": "
      << (result.peak_rss_kb > 0 ? result.peak_rss_kb : PeakRssKb()) << ",\n";
  out << "  \"latency_us\": " << RenderSummary(result.latency_us) << ",\n";
  out << "  \"extra_latency_us\": {";
  first = true;
  for (const auto& [name, summary] : result.extra_latency_us) {
    out << (first ? "" : ", ") << Quote(name) << ": "
        << RenderSummary(summary);
    first = false;
  }
  out << "},\n";
  out << "  \"metrics\": {";
  first = true;
  for (const auto& [name, value] : result.metrics) {
    out << (first ? "" : ", ") << Quote(name) << ": " << Num(value);
    first = false;
  }
  out << "},\n";
  out << "  \"host_phase_us\": {";
  first = true;
  for (const auto& [phase, us] : result.host_phase_us) {
    out << (first ? "" : ", ") << Quote(phase) << ": " << Num(us);
    first = false;
  }
  out << "}\n}\n";
  return out.str();
}

Status WriteBenchJson(const BenchResult& result, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  out << RenderBenchJson(result);
  out.close();
  if (!out) {
    return Status::Internal("write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<BenchResult> ParseBenchJson(const std::string& json) {
  JsonParser parser(json);
  auto parsed = parser.Parse();
  CWF_RETURN_NOT_OK(parsed.status());
  const JsonValue& root = parsed.value();
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("BENCH json root must be an object");
  }
  const JsonValue* version = root.Find("schema_version");
  if (version == nullptr || version->kind != JsonValue::Kind::kNumber) {
    return Status::InvalidArgument("BENCH json lacks schema_version");
  }
  if (static_cast<int>(version->number) > kSchemaVersion) {
    return Status::InvalidArgument(
        "BENCH json schema_version " +
        std::to_string(static_cast<int>(version->number)) +
        " is newer than this binary (" + std::to_string(kSchemaVersion) + ")");
  }
  BenchResult result;
  if (const JsonValue* v = root.Find("bench")) result.bench = v->string;
  if (const JsonValue* v = root.Find("git_sha")) result.git_sha = v->string;
  if (const JsonValue* v = root.Find("wall_s")) result.wall_s = v->NumberOr(0);
  if (const JsonValue* v = root.Find("throughput_per_s")) {
    result.throughput_per_s = v->NumberOr(0);
  }
  if (const JsonValue* v = root.Find("peak_rss_kb")) {
    result.peak_rss_kb = static_cast<long>(v->NumberOr(0));
  }
  if (const JsonValue* v = root.Find("latency_us")) {
    result.latency_us = SummaryFrom(*v);
  }
  if (const JsonValue* v = root.Find("extra_latency_us")) {
    for (const auto& [name, summary] : v->object) {
      result.extra_latency_us[name] = SummaryFrom(summary);
    }
  }
  if (const JsonValue* v = root.Find("config")) {
    for (const auto& [key, value] : v->object) {
      result.config[key] = value.string;
    }
  }
  if (const JsonValue* v = root.Find("metrics")) {
    for (const auto& [key, value] : v->object) {
      result.metrics[key] = value.NumberOr(0);
    }
  }
  if (const JsonValue* v = root.Find("host_phase_us")) {
    for (const auto& [key, value] : v->object) {
      result.host_phase_us[key] = value.NumberOr(0);
    }
  }
  return result;
}

Result<BenchResult> ReadBenchJson(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot read '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto result = ParseBenchJson(buffer.str());
  if (!result.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   result.status().message());
  }
  return result;
}

BenchResult FromLRB(const lrb::ExperimentResult& result,
                    const std::string& bench_name, double wall_s) {
  BenchResult bench;
  bench.bench = bench_name;
  bench.wall_s = wall_s;
  bench.config["scheduler"] = lrb::SchedulerKindName(result.scheduler);
  bench.config["clock"] = "virtual";
  bench.config["workload"] = "linear-road";
  bench.throughput_per_s =
      wall_s > 0 ? static_cast<double>(result.reports_generated) / wall_s : 0;
  bench.latency_us = FromHistogram(result.toll_response_hist);
  bench.extra_latency_us["accident_response"] =
      FromHistogram(result.accident_response_hist);
  bench.metrics["reports_generated"] =
      static_cast<double>(result.reports_generated);
  bench.metrics["toll_notifications"] =
      static_cast<double>(result.toll_notifications);
  bench.metrics["accident_notifications"] =
      static_cast<double>(result.accident_notifications);
  bench.metrics["accidents_injected"] =
      static_cast<double>(result.accidents_injected);
  bench.metrics["accidents_recorded"] =
      static_cast<double>(result.accidents_recorded);
  bench.metrics["tolls_calculated"] =
      static_cast<double>(result.tolls_calculated);
  bench.metrics["total_firings"] = static_cast<double>(result.total_firings);
  bench.metrics["director_iterations"] =
      static_cast<double>(result.director_iterations);
  bench.metrics["toll_avg_response_s"] = Finite(result.toll_avg_response_s);
  bench.metrics["toll_p95_response_s"] = Finite(result.toll_p95_response_s);
  bench.metrics["toll_max_response_s"] = Finite(result.toll_max_response_s);
  bench.metrics["accident_fraction_under_5s"] =
      Finite(result.accident_fraction_under_5s);
  return bench;
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

namespace {

double DeltaPct(double baseline, double current) {
  if (baseline == 0) {
    return current == 0 ? 0 : 100;
  }
  return (current - baseline) / baseline * 100.0;
}

void AddFinding(CompareReport* report, const std::string& metric,
                double baseline, double current, bool higher_is_worse,
                double threshold_pct) {
  CompareFinding finding;
  finding.metric = metric;
  finding.baseline = baseline;
  finding.current = current;
  finding.delta_pct = DeltaPct(baseline, current);
  const double degradation =
      higher_is_worse ? finding.delta_pct : -finding.delta_pct;
  finding.regression = degradation > threshold_pct;
  report->regressed = report->regressed || finding.regression;
  report->findings.push_back(std::move(finding));
}

}  // namespace

CompareReport CompareBench(const BenchResult& baseline,
                           const BenchResult& current,
                           const CompareThresholds& thresholds) {
  CompareReport report;
  report.bench = current.bench.empty() ? baseline.bench : current.bench;
  AddFinding(&report, "throughput_per_s", baseline.throughput_per_s,
             current.throughput_per_s, /*higher_is_worse=*/false,
             thresholds.throughput_drop_pct);
  AddFinding(&report, "latency_us.p50", baseline.latency_us.p50,
             current.latency_us.p50, true, thresholds.latency_rise_pct);
  AddFinding(&report, "latency_us.p95", baseline.latency_us.p95,
             current.latency_us.p95, true, thresholds.latency_rise_pct);
  AddFinding(&report, "latency_us.p99", baseline.latency_us.p99,
             current.latency_us.p99, true, thresholds.latency_rise_pct);
  AddFinding(&report, "peak_rss_kb",
             static_cast<double>(baseline.peak_rss_kb),
             static_cast<double>(current.peak_rss_kb), true,
             thresholds.rss_rise_pct);
  for (const auto& [name, summary] : current.extra_latency_us) {
    auto it = baseline.extra_latency_us.find(name);
    if (it == baseline.extra_latency_us.end()) {
      continue;
    }
    AddFinding(&report, "extra_latency_us." + name + ".p95", it->second.p95,
               summary.p95, true, thresholds.latency_rise_pct);
  }
  return report;
}

std::string CompareReport::Render() const {
  std::ostringstream out;
  out << "bench: " << bench << "\n";
  char line[160];
  std::snprintf(line, sizeof(line), "%-32s %14s %14s %9s  %s\n", "metric",
                "baseline", "current", "delta%", "verdict");
  out << line;
  for (const CompareFinding& f : findings) {
    std::snprintf(line, sizeof(line), "%-32s %14s %14s %+8.1f%%  %s\n",
                  f.metric.c_str(), Num(f.baseline).c_str(),
                  Num(f.current).c_str(), f.delta_pct,
                  f.regression ? "REGRESSION" : "ok");
    out << line;
  }
  out << (regressed ? "RESULT: REGRESSED\n" : "RESULT: ok\n");
  return out.str();
}

}  // namespace cwf::bench

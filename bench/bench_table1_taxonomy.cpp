// Table 1: taxonomy of directors found in Kepler and PtolemyII plus the
// CONFLuEnCE directors, regenerated from the library's registry.

#include <cstdio>

#include "directors/taxonomy.h"

int main() {
  std::printf(
      "Table 1: Taxonomy of Directors (Kepler / PtolemyII / CONFLuEnCE)\n\n");
  std::printf("%s\n", cwf::RenderDirectorTaxonomy().c_str());
  return 0;
}

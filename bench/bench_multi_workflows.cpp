// Future-work §5 experiment: multiple continuous workflows under the
// two-level scheduling design. Two Linear Road instances (different seeds)
// share one node through the global scheduler; capacity weights shift QoS
// between them, demonstrating "workflows with different priorities and
// different optimization metrics".

#include <cstdio>

#include "directors/scwf_director.h"
#include "lrb/harness.h"
#include "multi/global_scheduler.h"
#include "stafilos/qbs_scheduler.h"

using namespace cwf;
using namespace cwf::lrb;

namespace {

struct Instance {
  std::unique_ptr<Manager> manager;
  std::shared_ptr<db::Database> db;
  std::unique_ptr<ResponseTimeSeries> toll;
  std::unique_ptr<ResponseTimeSeries> acc;
};

Instance BuildInstance(const std::string& name, uint64_t seed,
                       Duration duration) {
  GeneratorOptions gopt;
  gopt.seed = seed;
  gopt.duration = duration;
  // Halve the per-instance rate so two instances together load one node.
  gopt.initial_rate = 10;
  gopt.rate_slope_per_sec = 0.16;
  gopt.max_rate = 100;
  Generator gen(gopt);
  auto feed = std::make_shared<PushChannel>();
  feed->PushTrace(gen.Generate());
  feed->Close();
  auto app = BuildLRBApplication(feed).value();
  ExperimentOptions opt;
  auto sched = std::make_unique<QBSScheduler>(opt.qbs);
  ApplyLRBPriorities(sched.get());
  auto manager = std::make_unique<Manager>(
      name, std::move(app.workflow),
      std::make_unique<SCWFDirector>(std::move(sched)));
  return {std::move(manager), app.database, std::move(app.toll_series),
          std::move(app.accident_series)};
}

void RunPair(const char* label, double weight_a, double weight_b) {
  const Duration duration = Seconds(600);
  Instance a = BuildInstance("wf_a", 11, duration);
  Instance b = BuildInstance("wf_b", 22, duration);
  VirtualClock clock;
  CostModel cm = DefaultLRBCostModel();
  CWF_CHECK(a.manager->Initialize(&clock, &cm).ok());
  CWF_CHECK(b.manager->Initialize(&clock, &cm).ok());
  GlobalSchedulerOptions opt;
  opt.policy = CapacityPolicy::kWeightedShare;
  opt.base_quantum = 20000;
  GlobalScheduler global(opt);
  global.AddManager(a.manager.get(), weight_a);
  global.AddManager(b.manager.get(), weight_b);
  CWF_CHECK(global.Run(&clock, Timestamp::Seconds(660)).ok());
  std::printf("%-22s wf_a: avg=%7.3fs p95=%8.3fs cpu=%6.1fs | "
              "wf_b: avg=%7.3fs p95=%8.3fs cpu=%6.1fs\n",
              label, a.toll->OverallAvgSeconds(),
              a.toll->PercentileSeconds(95),
              static_cast<double>(a.manager->cpu_time_used()) / 1e6,
              b.toll->OverallAvgSeconds(), b.toll->PercentileSeconds(95),
              static_cast<double>(b.manager->cpu_time_used()) / 1e6);
}

}  // namespace

int main() {
  std::printf(
      "Multi-workflow two-level scheduling (paper §5): two half-rate Linear\n"
      "Road instances sharing one node under the global scheduler.\n\n");
  RunPair("equal share (1:1)", 1.0, 1.0);
  RunPair("weighted (3:1)", 3.0, 1.0);
  std::printf(
      "\nExpected shape: equal weights give both instances similar QoS;\n"
      "a 3:1 capacity split protects wf_a's response time at wf_b's cost.\n");
  return 0;
}

// Table 2: state conditions for an actor A in the different schedulers,
// demonstrated live: a three-actor pipeline is driven into each state and
// the observed scheduler state is printed next to the paper's condition.

#include <cstdio>

#include "actors/library.h"
#include "directors/scwf_director.h"
#include "stafilos/qbs_scheduler.h"
#include "stafilos/rb_scheduler.h"
#include "stafilos/rr_scheduler.h"
#include "stream/stream_source.h"

using namespace cwf;

namespace {

struct Rig {
  Workflow wf{"t2"};
  std::shared_ptr<PushChannel> feed = std::make_shared<PushChannel>();
  StreamSourceActor* src;
  MapActor* stage;
  CollectorSink* sink;
  VirtualClock clock;
  CostModel cm;

  Rig() {
    src = wf.AddActor<StreamSourceActor>("src", feed);
    stage = wf.AddActor<MapActor>("stage",
                                  [](const Token& t) { return t; });
    sink = wf.AddActor<CollectorSink>("sink");
    CWF_CHECK(wf.Connect(src->out(), stage->in()).ok());
    CWF_CHECK(wf.Connect(stage->out(), sink->in()).ok());
  }
};

void Show(const char* scheduler, const char* situation, const char* paper,
          ActorState observed) {
  std::printf("  %-4s | %-38s | paper: %-9s | observed: %s\n", scheduler,
              situation, paper, ActorStateName(observed));
}

}  // namespace

int main() {
  std::printf("Table 2: actor state conditions per scheduler (live demo)\n\n");

  {  // QBS: events + positive quantum = ACTIVE -> drained = INACTIVE.
    Rig rig;
    SCWFDirector d(std::make_unique<QBSScheduler>());
    CWF_CHECK(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
    rig.feed->Push(Token(1), Timestamp(0));
    rig.feed->Close();
    CWF_CHECK(d.Run(Timestamp::Max()).ok());
    Show("QBS", "no events left in queue", "INACTIVE",
         d.scheduler()->GetState(rig.stage));
    Show("QBS", "source after stream exhausted", "WAITING",
         d.scheduler()->GetState(rig.src));
  }
  {  // QBS: negative quantum with events = WAITING.
    Rig rig;
    rig.cm.SetActorCost("stage", {10000000, 0, 0});
    QBSOptions opt;
    opt.basic_quantum = 10;
    opt.max_banked_epochs = 1;
    auto sched = std::make_unique<QBSScheduler>(opt);
    AbstractScheduler* sp = sched.get();
    SCWFDirector d(std::move(sched));
    CWF_CHECK(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
    for (int i = 0; i < 50; ++i) {
      rig.feed->Push(Token(i), Timestamp(0));
    }
    // Run a bounded horizon so the overdrawn actor is caught mid-flight.
    CWF_CHECK(d.Run(Timestamp::Seconds(15)).ok());
    Show("QBS", "events queued, quantum overdrawn", "WAITING",
         sp->GetState(rig.stage));
  }
  {  // RR mirrors QBS without priorities.
    Rig rig;
    SCWFDirector d(std::make_unique<RRScheduler>());
    CWF_CHECK(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
    rig.feed->Push(Token(1), Timestamp(0));
    rig.feed->Close();
    CWF_CHECK(d.Run(Timestamp::Max()).ok());
    Show("RR", "no events left in queue", "INACTIVE",
         d.scheduler()->GetState(rig.stage));
    Show("RR", "source after stream exhausted", "WAITING",
         d.scheduler()->GetState(rig.src));
  }
  {  // RB: period buffer => WAITING; release => ACTIVE.
    Rig rig;
    auto sched = std::make_unique<RBScheduler>();
    RBScheduler* sp = sched.get();
    SCWFDirector d(std::move(sched));
    CWF_CHECK(d.Initialize(&rig.wf, &rig.clock, &rig.cm).ok());
    ReadyWindow rw;
    rw.receiver =
        static_cast<TMWindowedReceiver*>(rig.stage->in()->receiver(0));
    rw.window.events.push_back(CWEvent(Token(1), Timestamp(0), WaveTag::Root(1)));
    sp->Enqueue(rig.stage, std::move(rw));
    Show("RB", "events only in next-period buffer", "WAITING",
         sp->GetState(rig.stage));
    sp->OnIterationEnd();
    Show("RB", "period ended, buffer released", "ACTIVE",
         sp->GetState(rig.stage));
  }
  std::printf("\n(A source actor never transitions into INACTIVE.)\n");
  return 0;
}

// Figure 7: response times at TollNotification for the QBS scheduler using
// varying basic quantum values.

#include <cstdio>

#include "lrb/harness.h"

using namespace cwf;
using namespace cwf::lrb;

int main() {
  std::printf(
      "Figure 7: Response Time at TollNotification for the QBS scheduler\n\n");
  for (Duration b : {Duration(500), Duration(1000), Duration(5000),
                     Duration(10000), Duration(20000)}) {
    ExperimentOptions opt;
    opt.scheduler = SchedulerKind::kQBS;
    opt.qbs.basic_quantum = b;
    auto res = RunLRBExperiment(opt);
    if (!res.ok()) {
      std::printf("QBS-q%lld FAILED: %s\n", static_cast<long long>(b),
                  res.status().ToString().c_str());
      continue;
    }
    char label[64];
    std::snprintf(label, sizeof(label), "QBS-q%lld",
                  static_cast<long long>(b));
    std::printf("%s\n", RenderCurve(*res, label).c_str());
    std::printf("# %s: avg=%.3fs p95=%.3fs thrash@2s=%.0fs tolls=%zu\n\n",
                label, res->toll_avg_response_s, res->toll_p95_response_s,
                res->ThrashTimeSeconds(2.0), res->toll_notifications);
  }
  return 0;
}

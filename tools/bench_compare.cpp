// bench_compare: regression gate over canonical BENCH_*.json files.
//
// Compares a current benchmark result (file or directory of BENCH_*.json)
// against a committed baseline and fails when throughput drops, latency
// percentiles rise, or peak RSS grows by more than the configured
// thresholds. Directories are matched by file name, so a baseline tree
// checked into bench/baselines/ gates a freshly produced results dir with
// one invocation. --warn-only reports but always exits 0 (the CI
// perf-smoke lane runs in this mode: shared runners are too noisy to make
// wall-clock numbers a hard gate).
//
// Usage:
//   bench_compare BASELINE CURRENT
//       [--max-throughput-drop-pct N] [--max-latency-rise-pct N]
//       [--max-rss-rise-pct N] [--warn-only]
//
// Exit codes: 0 = within thresholds (or --warn-only), 1 = regression,
// 2 = usage / unreadable input.

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BASELINE CURRENT [--max-throughput-drop-pct N] "
               "[--max-latency-rise-pct N] [--max-rss-rise-pct N] "
               "[--warn-only]\n"
               "BASELINE and CURRENT are BENCH_*.json files or directories "
               "of them (matched by file name).\n",
               argv0);
  return 2;
}

bool IsDirectory(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/// BENCH_*.json file names directly inside `dir`, sorted.
std::vector<std::string> ListBenchFiles(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return names;
  }
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

/// One (baseline path, current path) pair to compare.
struct ComparePair {
  std::string name;
  std::string baseline_path;
  std::string current_path;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  cwf::bench::CompareThresholds thresholds;
  bool warn_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-throughput-drop-pct" && i + 1 < argc) {
      thresholds.throughput_drop_pct = std::atof(argv[++i]);
    } else if (arg == "--max-latency-rise-pct" && i + 1 < argc) {
      thresholds.latency_rise_pct = std::atof(argv[++i]);
    } else if (arg == "--max-rss-rise-pct" && i + 1 < argc) {
      thresholds.rss_rise_pct = std::atof(argv[++i]);
    } else if (arg == "--warn-only") {
      warn_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    return Usage(argv[0]);
  }
  const std::string& baseline_arg = positional[0];
  const std::string& current_arg = positional[1];

  std::vector<ComparePair> pairs;
  if (IsDirectory(baseline_arg) && IsDirectory(current_arg)) {
    const auto baseline_files = ListBenchFiles(baseline_arg);
    if (baseline_files.empty()) {
      std::fprintf(stderr, "bench_compare: no BENCH_*.json under %s\n",
                   baseline_arg.c_str());
      return 2;
    }
    const auto current_files = ListBenchFiles(current_arg);
    for (const std::string& name : baseline_files) {
      if (std::find(current_files.begin(), current_files.end(), name) ==
          current_files.end()) {
        std::printf("%-28s MISSING in %s (skipped)\n", name.c_str(),
                    current_arg.c_str());
        continue;
      }
      pairs.push_back({name, baseline_arg + "/" + name,
                       current_arg + "/" + name});
    }
  } else if (!IsDirectory(baseline_arg) && !IsDirectory(current_arg)) {
    pairs.push_back({baseline_arg, baseline_arg, current_arg});
  } else {
    std::fprintf(stderr,
                 "bench_compare: BASELINE and CURRENT must both be files or "
                 "both be directories\n");
    return 2;
  }

  bool any_regressed = false;
  for (const ComparePair& pair : pairs) {
    auto baseline = cwf::bench::ReadBenchJson(pair.baseline_path);
    if (!baseline.ok()) {
      std::fprintf(stderr, "bench_compare: %s\n",
                   baseline.status().ToString().c_str());
      return 2;
    }
    auto current = cwf::bench::ReadBenchJson(pair.current_path);
    if (!current.ok()) {
      std::fprintf(stderr, "bench_compare: %s\n",
                   current.status().ToString().c_str());
      return 2;
    }
    const cwf::bench::CompareReport report = cwf::bench::CompareBench(
        baseline.value(), current.value(), thresholds);
    std::printf("=== %s (baseline %s -> current %s)\n%s\n", pair.name.c_str(),
                baseline->git_sha.c_str(), current->git_sha.c_str(),
                report.Render().c_str());
    any_regressed = any_regressed || report.regressed;
  }
  if (any_regressed && warn_only) {
    std::printf("bench_compare: regressions found (warn-only, exit 0)\n");
  }
  return (any_regressed && !warn_only) ? 1 : 0;
}

// cwf_analyze: the MoC-aware static workflow linter and capacity planner.
//
// Runs every analysis pass (structural, MoC admission, window/wave,
// scheduler config, quantitative rate/boundedness) over the built-in graph
// catalog — analyzable mirrors of the example programs plus the Linear
// Road benchmark — and reports diagnostics as text or JSON. Exits non-zero
// when any error-severity finding exists (or any warning, with --strict),
// so tools/check.sh can gate on it.
//
// Usage:
//   cwf_analyze                   analyze every built-in graph
//   cwf_analyze lrb quickstart    analyze a subset by name
//   cwf_analyze --list            list the built-in graphs
//   cwf_analyze --codes           print the diagnostic-code registry
//                                 (with --json: machine-readable)
//   cwf_analyze --json            machine-readable diagnostics
//   cwf_analyze --dot             emit Graphviz DOT per graph, actors
//                                 carrying errors filled red (warnings
//                                 orange)
//   cwf_analyze --matrix          per-director admission matrix
//   cwf_analyze --plan            static capacity plan per graph
//                                 (per-channel buffer bounds)
//   cwf_analyze --liveness        artificial-deadlock classification of
//                                 each graph's capacity plan (provably
//                                 live / provably deadlocking with the
//                                 witness cycle / unknown); deadlocks are
//                                 errors for the exit code, --dot fills
//                                 witness actors red
//   cwf_analyze --assume-capacity N
//                                 with --liveness: what-if analysis with
//                                 every channel bounded to N instead of
//                                 the synthesized plan
//   cwf_analyze --critical-path   longest modeled source->sink cost chain
//   cwf_analyze --utilization     per-actor and total utilization
//   cwf_analyze --schemas         per-channel resolved token types/record
//                                 layouts (schema pass CWF70xx findings are
//                                 always part of the diagnostics; this adds
//                                 the per-level channel tables, --dot labels
//                                 channels with their layout and paints
//                                 mismatched edges red)
//   cwf_analyze --strict          treat warnings as errors for the exit
//                                 code

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/builtin_graphs.h"
#include "analysis/capacity_planner.h"
#include "analysis/liveness_pass.h"
#include "analysis/schema_pass.h"
#include "core/composite_actor.h"
#include "core/workflow.h"

namespace {

using cwf::Workflow;
using cwf::analysis::AnalysisOptions;
using cwf::analysis::Analyzer;
using cwf::analysis::BuildBuiltinGraphs;
using cwf::analysis::BuiltinGraph;
using cwf::analysis::AnalysisOptionsFor;
using cwf::analysis::CapacityPlan;
using cwf::analysis::ComputeAdmissionMatrix;
using cwf::analysis::Diagnostic;
using cwf::analysis::DiagnosticBag;
using cwf::analysis::AnalyzeLiveness;
using cwf::analysis::DiagnosticCodes;
using cwf::analysis::DiagnosticCodesJson;
using cwf::analysis::LivenessReport;
using cwf::analysis::AnalyzeSchemas;
using cwf::analysis::PlanCapacity;
using cwf::analysis::PlanningOptions;
using cwf::analysis::SchemaReport;
using cwf::analysis::ReportLiveness;
using cwf::analysis::Severity;
using cwf::analysis::SeverityName;

struct CliOptions {
  bool list = false;
  bool codes = false;
  bool json = false;
  bool dot = false;
  bool matrix = false;
  bool plan = false;
  bool liveness = false;
  size_t assume_capacity = 0;  // with --liveness: bound every channel to N
  bool critical_path = false;
  bool utilization = false;
  bool schemas = false;
  bool strict = false;
  std::vector<std::string> graphs;  // empty = all
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list|--codes] [--json] [--dot] [--matrix] "
               "[--plan] [--liveness] [--assume-capacity N] "
               "[--critical-path] [--utilization] [--schemas] [--strict] "
               "[graph...]\n",
               argv0);
  return 2;
}

/// Renders a possibly-infinite double as a JSON value (inf has no JSON
/// literal, so it becomes the string "inf").
std::string JsonNumber(double v) {
  if (std::isinf(v)) {
    return "\"inf\"";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JoinPath(const std::vector<std::string>& path) {
  std::string out;
  for (const std::string& node : path) {
    if (!out.empty()) {
      out += " -> ";
    }
    out += node;
  }
  return out;
}

std::string DotWithFindings(const BuiltinGraph& graph,
                            const DiagnosticBag& diags,
                            const LivenessReport* liveness,
                            const std::vector<SchemaReport>* schemas) {
  Workflow::DotOptions options;
  if (schemas != nullptr) {
    // Label every channel with its resolved layout; paint mismatches red.
    for (const SchemaReport& report : *schemas) {
      for (const auto& ch : report.channels) {
        Workflow::DotOptions::EdgeStyle& style =
            options.edge_style[{ch.to_port, ch.to_channel}];
        if (!ch.resolved.is_unknown()) {
          style.label = ch.resolved.ToString();
        }
        if (ch.mismatched) {
          style.color = "red";
        }
      }
    }
  }
  for (const Diagnostic& d : diags.all()) {
    if (d.actor == nullptr) {
      continue;
    }
    if (d.severity == Severity::kError) {
      options.node_fill[d.actor] = "red";
    } else if (d.severity == Severity::kWarning &&
               options.node_fill.count(d.actor) == 0) {
      options.node_fill[d.actor] = "orange";
    }
  }
  if (liveness != nullptr) {
    // Deadlock witness: every actor in the blocked cycle is filled red.
    for (const cwf::DeadlockEdge& edge : liveness->witness.cycle) {
      if (edge.waiter != nullptr) {
        options.node_fill[edge.waiter] = "red";
      }
    }
  }
  return graph.workflow->ToDot(options);
}

/// A deliberately mistyped two-actor graph, built only when explicitly
/// named on the command line (never part of the default catalog, which
/// must stay clean under --strict): lets users and the CLI smoke tests see
/// the CWF70xx failure mode and diagnostic-exit behavior without breaking
/// a real example.
class DemoTypedNode : public cwf::Actor {
 public:
  DemoTypedNode(std::string name, int inputs, int outputs)
      : cwf::Actor(std::move(name)) {
    for (int i = 0; i < inputs; ++i) {
      in_.push_back(AddInputPort("in"));
    }
    for (int i = 0; i < outputs; ++i) {
      out_.push_back(AddOutputPort("out"));
    }
  }
  cwf::Status Fire() override { return cwf::Status::OK(); }
  cwf::InputPort* in(size_t i = 0) { return in_[i]; }
  cwf::OutputPort* out(size_t i = 0) { return out_[i]; }

 private:
  std::vector<cwf::InputPort*> in_;
  std::vector<cwf::OutputPort*> out_;
};

BuiltinGraph BuildSchemaMismatchDemo() {
  auto wf = std::make_shared<Workflow>("SchemaMismatchDemo");
  auto* src = wf->AddActor<DemoTypedNode>("reports", 0, 1);
  auto* sink = wf->AddActor<DemoTypedNode>("tolls", 1, 0);
  cwf::RecordSchema have;
  have.Int("time").Str("speed");  // speed should be a double
  src->out()->set_schema(cwf::TokenType::Record(have));
  cwf::RecordSchema need;
  need.Int("time").Int("car").Double("speed");
  sink->in()->set_required_schema(cwf::TokenType::Record(need));
  CWF_CHECK(wf->Connect(src->out(), sink->in()).ok());
  BuiltinGraph graph;
  graph.name = "schema-mismatch-demo";
  graph.description =
      "deliberately mistyped channel (CWF7002/CWF7003 showcase)";
  graph.director = "DDF";
  graph.workflow = wf.get();
  graph.retained = wf;
  return graph;
}

/// Schema reports for `workflow` and, recursively, every composite level
/// below it; inner levels are prefixed "composite/" like the Analyzer's
/// location prefixes.
void CollectSchemaReports(const Workflow& workflow, const std::string& prefix,
                          const cwf::analysis::AnalysisOptions& options,
                          std::vector<SchemaReport>* out) {
  SchemaReport report = AnalyzeSchemas(workflow, options);
  if (!prefix.empty()) {
    report.workflow = prefix + report.workflow;
  }
  out->push_back(std::move(report));
  for (const auto& actor : workflow.actors()) {
    if (auto* composite = dynamic_cast<cwf::CompositeActor*>(actor.get())) {
      CollectSchemaReports(*composite->inner(), prefix + actor->name() + "/",
                           options, out);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--list")) {
      cli.list = true;
    } else if (!std::strcmp(arg, "--codes")) {
      cli.codes = true;
    } else if (!std::strcmp(arg, "--json")) {
      cli.json = true;
    } else if (!std::strcmp(arg, "--dot")) {
      cli.dot = true;
    } else if (!std::strcmp(arg, "--matrix")) {
      cli.matrix = true;
    } else if (!std::strcmp(arg, "--plan")) {
      cli.plan = true;
    } else if (!std::strcmp(arg, "--liveness")) {
      cli.liveness = true;
    } else if (!std::strcmp(arg, "--assume-capacity")) {
      if (i + 1 >= argc) {
        return Usage(argv[0]);
      }
      cli.assume_capacity =
          static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (cli.assume_capacity == 0) {
        return Usage(argv[0]);
      }
    } else if (!std::strcmp(arg, "--critical-path")) {
      cli.critical_path = true;
    } else if (!std::strcmp(arg, "--utilization")) {
      cli.utilization = true;
    } else if (!std::strcmp(arg, "--schemas")) {
      cli.schemas = true;
    } else if (!std::strcmp(arg, "--strict")) {
      cli.strict = true;
    } else if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
      Usage(argv[0]);
      return 0;
    } else if (arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      cli.graphs.push_back(arg);
    }
  }

  if (cli.codes) {
    if (cli.json) {
      std::printf("%s\n", DiagnosticCodesJson().c_str());
      return 0;
    }
    std::printf("%-9s %-8s %s\n", "code", "default", "summary");
    for (const auto& info : DiagnosticCodes()) {
      std::printf("%-9s %-8s %s\n", info.code,
                  SeverityName(info.default_severity), info.summary);
    }
    return 0;
  }

  std::vector<BuiltinGraph> graphs = BuildBuiltinGraphs();

  if (cli.list) {
    for (const BuiltinGraph& g : graphs) {
      std::printf("%-16s %-6s %-5s %s\n", g.name.c_str(), g.director.c_str(),
                  g.scheduler ? g.scheduler->policy.c_str() : "-",
                  g.description.c_str());
    }
    return 0;
  }

  if (!cli.graphs.empty()) {
    std::vector<BuiltinGraph> selected;
    for (const std::string& want : cli.graphs) {
      bool found = false;
      for (BuiltinGraph& g : graphs) {
        if (g.name == want) {
          selected.push_back(std::move(g));
          found = true;
          break;
        }
      }
      if (!found && want == "schema-mismatch-demo") {
        selected.push_back(BuildSchemaMismatchDemo());
        found = true;
      }
      if (!found) {
        std::fprintf(stderr, "unknown graph '%s' (try --list)\n",
                     want.c_str());
        return 2;
      }
    }
    graphs = std::move(selected);
  }

  const Analyzer analyzer;
  const bool want_plan = cli.plan || cli.critical_path || cli.utilization;
  size_t errors = 0;
  size_t warnings = 0;
  bool first_json = true;
  if (cli.json) {
    std::printf("[");
  }
  for (const BuiltinGraph& graph : graphs) {
    const AnalysisOptions options = AnalysisOptionsFor(graph);
    const DiagnosticBag diags = analyzer.Analyze(*graph.workflow, options);
    errors += diags.ErrorCount();
    warnings += diags.WarningCount();

    CapacityPlan plan;
    if (want_plan) {
      plan = PlanCapacity(*graph.workflow, options);
    }

    std::vector<SchemaReport> schema_reports;
    if (cli.schemas) {
      CollectSchemaReports(*graph.workflow, "", options, &schema_reports);
    }

    LivenessReport liveness;
    if (cli.liveness) {
      CapacityPlan analyzed;
      if (cli.assume_capacity > 0) {
        // What-if: the raw quantitative plan with every channel clamped to
        // the assumed bound, deliberately skipping liveness synthesis so
        // the clamp is what gets analyzed.
        PlanningOptions planning;
        planning.ensure_liveness = false;
        analyzed = PlanCapacity(*graph.workflow, options, planning);
        for (auto& ch : analyzed.channels) {
          ch.bounded = true;
          ch.capacity = cli.assume_capacity;
        }
      } else {
        analyzed =
            want_plan ? plan : PlanCapacity(*graph.workflow, options);
      }
      liveness = AnalyzeLiveness(*graph.workflow, options, analyzed);
      DiagnosticBag liveness_diags;
      ReportLiveness(liveness, options, &liveness_diags);
      errors += liveness_diags.ErrorCount();
      warnings += liveness_diags.WarningCount();
    }

    if (cli.json) {
      std::printf("%s{\"graph\":\"%s\",\"director\":\"%s\","
                  "\"diagnostics\":%s",
                  first_json ? "" : ",", graph.name.c_str(),
                  graph.director.c_str(), diags.ToJson().c_str());
      if (cli.plan) {
        std::printf(",\"plan\":%s", plan.ToJson().c_str());
      }
      if (cli.liveness) {
        std::printf(",\"liveness\":%s", liveness.ToJson().c_str());
      }
      if (cli.schemas) {
        std::printf(",\"schemas\":[");
        for (size_t i = 0; i < schema_reports.size(); ++i) {
          std::printf("%s%s", i == 0 ? "" : ",",
                      schema_reports[i].ToJson().c_str());
        }
        std::printf("]");
      }
      if (cli.critical_path && !cli.plan) {
        std::printf(",\"critical_path\":[");
        for (size_t i = 0; i < plan.critical_path.size(); ++i) {
          std::printf("%s\"%s\"", i == 0 ? "" : ",",
                      plan.critical_path[i].c_str());
        }
        std::printf("],\"critical_path_latency_micros\":%s",
                    JsonNumber(plan.critical_path_latency_micros).c_str());
      }
      if (cli.utilization && !cli.plan) {
        std::printf(",\"utilization\":{\"actors\":[");
        for (size_t i = 0; i < plan.actors.size(); ++i) {
          std::printf("%s{\"actor\":\"%s\",\"utilization\":%s}",
                      i == 0 ? "" : ",", plan.actors[i].actor.c_str(),
                      JsonNumber(plan.actors[i].utilization).c_str());
        }
        std::printf("],\"total\":%s}",
                    JsonNumber(plan.total_utilization).c_str());
      }
      std::printf("}");
      first_json = false;
      continue;
    }

    std::printf("%s (%s%s%s): %zu error(s), %zu warning(s), %zu note(s)\n",
                graph.name.c_str(), graph.director.c_str(),
                graph.scheduler ? " + " : "",
                graph.scheduler ? graph.scheduler->policy.c_str() : "",
                diags.ErrorCount(), diags.WarningCount(), diags.NoteCount());
    if (!diags.empty()) {
      std::printf("%s", diags.ToText().c_str());
    }
    if (cli.matrix) {
      for (const auto& entry : ComputeAdmissionMatrix(*graph.workflow)) {
        std::printf("  %-6s %s%s\n", entry.director.c_str(),
                    entry.admissible ? "admissible" : "inadmissible: ",
                    entry.admissible ? "" : entry.reason.c_str());
      }
    }
    if (cli.plan) {
      std::printf("%s", plan.ToText().c_str());
    }
    if (cli.liveness) {
      std::printf("%s", liveness.ToText().c_str());
    }
    if (cli.schemas) {
      for (const SchemaReport& report : schema_reports) {
        std::printf("%s", report.ToText().c_str());
      }
    }
    if (cli.critical_path && !cli.plan) {
      std::printf("  critical path: %s (%.0f us)\n",
                  JoinPath(plan.critical_path).c_str(),
                  plan.critical_path_latency_micros);
    }
    if (cli.utilization && !cli.plan) {
      for (const auto& load : plan.actors) {
        std::printf("  util %-24s %6.3f (%.0f us/firing)\n",
                    load.actor.c_str(), load.utilization,
                    load.firing_cost_micros);
      }
      std::printf("  total utilization: %.3f\n", plan.total_utilization);
    }
    if (cli.dot) {
      std::printf("%s",
                  DotWithFindings(graph, diags,
                                  cli.liveness ? &liveness : nullptr,
                                  cli.schemas ? &schema_reports : nullptr)
                      .c_str());
    }
  }
  if (cli.json) {
    std::printf("]\n");
  }

  if (errors > 0) {
    return 1;
  }
  if (cli.strict && warnings > 0) {
    return 1;
  }
  return 0;
}

// cwf_analyze: the MoC-aware static workflow linter.
//
// Runs every analysis pass (structural, MoC admission, window/wave,
// scheduler config) over the built-in graph catalog — analyzable mirrors
// of the example programs plus the Linear Road benchmark — and reports
// diagnostics as text or JSON. Exits non-zero when any error-severity
// finding exists (or any warning, with --strict), so tools/check.sh can
// gate on it.
//
// Usage:
//   cwf_analyze                   analyze every built-in graph
//   cwf_analyze lrb quickstart    analyze a subset by name
//   cwf_analyze --list            list the built-in graphs
//   cwf_analyze --codes           print the diagnostic-code registry
//   cwf_analyze --json            machine-readable diagnostics
//   cwf_analyze --dot             emit Graphviz DOT per graph, actors
//                                 carrying errors filled red (warnings
//                                 orange)
//   cwf_analyze --matrix          per-director admission matrix
//   cwf_analyze --strict          treat warnings as errors for the exit
//                                 code

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/builtin_graphs.h"
#include "core/workflow.h"

namespace {

using cwf::Workflow;
using cwf::analysis::AnalysisOptions;
using cwf::analysis::Analyzer;
using cwf::analysis::BuildBuiltinGraphs;
using cwf::analysis::BuiltinGraph;
using cwf::analysis::ComputeAdmissionMatrix;
using cwf::analysis::Diagnostic;
using cwf::analysis::DiagnosticBag;
using cwf::analysis::DiagnosticCodes;
using cwf::analysis::Severity;
using cwf::analysis::SeverityName;

struct CliOptions {
  bool list = false;
  bool codes = false;
  bool json = false;
  bool dot = false;
  bool matrix = false;
  bool strict = false;
  std::vector<std::string> graphs;  // empty = all
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list|--codes] [--json] [--dot] [--matrix] "
               "[--strict] [graph...]\n",
               argv0);
  return 2;
}

std::string DotWithFindings(const BuiltinGraph& graph,
                            const DiagnosticBag& diags) {
  Workflow::DotOptions options;
  for (const Diagnostic& d : diags.all()) {
    if (d.actor == nullptr) {
      continue;
    }
    if (d.severity == Severity::kError) {
      options.node_fill[d.actor] = "red";
    } else if (d.severity == Severity::kWarning &&
               options.node_fill.count(d.actor) == 0) {
      options.node_fill[d.actor] = "orange";
    }
  }
  return graph.workflow->ToDot(options);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--list")) {
      cli.list = true;
    } else if (!std::strcmp(arg, "--codes")) {
      cli.codes = true;
    } else if (!std::strcmp(arg, "--json")) {
      cli.json = true;
    } else if (!std::strcmp(arg, "--dot")) {
      cli.dot = true;
    } else if (!std::strcmp(arg, "--matrix")) {
      cli.matrix = true;
    } else if (!std::strcmp(arg, "--strict")) {
      cli.strict = true;
    } else if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
      Usage(argv[0]);
      return 0;
    } else if (arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      cli.graphs.push_back(arg);
    }
  }

  if (cli.codes) {
    std::printf("%-9s %-8s %s\n", "code", "default", "summary");
    for (const auto& info : DiagnosticCodes()) {
      std::printf("%-9s %-8s %s\n", info.code,
                  SeverityName(info.default_severity), info.summary);
    }
    return 0;
  }

  std::vector<BuiltinGraph> graphs = BuildBuiltinGraphs();

  if (cli.list) {
    for (const BuiltinGraph& g : graphs) {
      std::printf("%-16s %-6s %-5s %s\n", g.name.c_str(), g.director.c_str(),
                  g.scheduler ? g.scheduler->policy.c_str() : "-",
                  g.description.c_str());
    }
    return 0;
  }

  if (!cli.graphs.empty()) {
    std::vector<BuiltinGraph> selected;
    for (const std::string& want : cli.graphs) {
      bool found = false;
      for (BuiltinGraph& g : graphs) {
        if (g.name == want) {
          selected.push_back(std::move(g));
          found = true;
          break;
        }
      }
      if (!found) {
        std::fprintf(stderr, "unknown graph '%s' (try --list)\n",
                     want.c_str());
        return 2;
      }
    }
    graphs = std::move(selected);
  }

  const Analyzer analyzer;
  size_t errors = 0;
  size_t warnings = 0;
  bool first_json = true;
  if (cli.json) {
    std::printf("[");
  }
  for (const BuiltinGraph& graph : graphs) {
    AnalysisOptions options;
    options.target_director = graph.director;
    options.scheduler = graph.scheduler;
    const DiagnosticBag diags = analyzer.Analyze(*graph.workflow, options);
    errors += diags.ErrorCount();
    warnings += diags.WarningCount();

    if (cli.json) {
      std::printf("%s{\"graph\":\"%s\",\"director\":\"%s\","
                  "\"diagnostics\":%s}",
                  first_json ? "" : ",", graph.name.c_str(),
                  graph.director.c_str(), diags.ToJson().c_str());
      first_json = false;
      continue;
    }

    std::printf("%s (%s%s%s): %zu error(s), %zu warning(s), %zu note(s)\n",
                graph.name.c_str(), graph.director.c_str(),
                graph.scheduler ? " + " : "",
                graph.scheduler ? graph.scheduler->policy.c_str() : "",
                diags.ErrorCount(), diags.WarningCount(), diags.NoteCount());
    if (!diags.empty()) {
      std::printf("%s", diags.ToText().c_str());
    }
    if (cli.matrix) {
      for (const auto& entry : ComputeAdmissionMatrix(*graph.workflow)) {
        std::printf("  %-6s %s%s\n", entry.director.c_str(),
                    entry.admissible ? "admissible" : "inadmissible: ",
                    entry.admissible ? "" : entry.reason.c_str());
      }
    }
    if (cli.dot) {
      std::printf("%s", DotWithFindings(graph, diags).c_str());
    }
  }
  if (cli.json) {
    std::printf("]\n");
  }

  if (errors > 0) {
    return 1;
  }
  if (cli.strict && warnings > 0) {
    return 1;
  }
  return 0;
}

// cwf_lrb_serve: run the Linear Road benchmark with the observability
// stack attached — metrics server, optional wave tracing, profiling,
// canonical bench JSON.
//
// Starts an obs::MetricsServer, prints the bound port, then runs the LRB
// experiment (repeatedly with --repeat, so cwf_top has changing counters
// to watch). After the run it can write the canonical BENCH_*.json
// (--bench FILE, bench/harness.h schema, including the profiler's
// host-time decomposition when profiling is on), the Chrome trace-event
// JSON for Perfetto (--trace FILE, implies tracing on), and a self-scrape
// of its own /metrics endpoint (--scrape-out FILE) that exercises the
// HTTP path end-to-end for CI. --profile enables the host-time profiler
// (and tracing, which critical-path attribution needs) and prints the
// per-(actor, phase) decomposition plus the top critical-path
// contributors per query type after the run; --profile-out FILE writes
// that report to a file as well. --serve-ms keeps the server up after the
// run for interactive cwf_top sessions.
//
// Usage:
//   cwf_lrb_serve [--port N] [--scheduler QBS|RR|RB|FIFO|EDF|PNCWF]
//                 [--duration-s S] [--repeat N] [--trace FILE]
//                 [--bench FILE] [--scrape-out FILE] [--serve-ms MS]
//                 [--profile] [--profile-out FILE]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "harness.h"
#include "lrb/harness.h"
#include "obs/export_server.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/telemetry.h"
#include "obs/trace_buffer.h"

namespace {

struct CliOptions {
  int port = 0;  // 0 = ephemeral
  std::string scheduler = "QBS";
  double duration_s = 120;
  int repeat = 1;
  std::string trace_path;
  std::string bench_path;
  std::string scrape_path;
  std::string profile_path;
  int serve_ms = 0;
  bool profile = false;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--scheduler QBS|RR|RB|FIFO|EDF|PNCWF] "
               "[--duration-s S] [--repeat N] [--trace FILE] [--bench FILE] "
               "[--scrape-out FILE] [--serve-ms MS] [--profile] "
               "[--profile-out FILE]\n",
               argv0);
  return 2;
}

bool ParseScheduler(const std::string& name, cwf::lrb::SchedulerKind* kind) {
  using cwf::lrb::SchedulerKind;
  static const struct {
    const char* name;
    SchedulerKind kind;
  } kTable[] = {
      {"QBS", SchedulerKind::kQBS},   {"RR", SchedulerKind::kRR},
      {"RB", SchedulerKind::kRB},     {"FIFO", SchedulerKind::kFIFO},
      {"EDF", SchedulerKind::kEDF},   {"PNCWF", SchedulerKind::kPNCWF},
  };
  for (const auto& entry : kTable) {
    if (name == entry.name) {
      *kind = entry.kind;
      return true;
    }
  }
  return false;
}

/// Fetches this process's own /metrics over loopback and writes the body to
/// `path` — proves the full TCP exposition path, not just the renderer.
bool SelfScrape(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return false;
  }
  const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
  if (::write(fd, request, sizeof(request) - 1) !=
      static_cast<ssize_t>(sizeof(request) - 1)) {
    ::close(fd);
    return false;
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos ||
      response.rfind("HTTP/1.0 200", 0) != 0) {
    return false;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return false;
  }
  out << response.substr(header_end + 4);
  return static_cast<bool>(out);
}

/// The combined profiling report: per-(actor, phase) self-time
/// decomposition followed by the critical-path attribution.
std::string RenderProfileReport() {
  const cwf::obs::ProfileSnapshot snapshot =
      cwf::obs::SnapshotProfile(cwf::obs::MetricsRegistry::Global());
  const cwf::obs::CriticalPathReport paths =
      cwf::obs::ComputeCriticalPaths(cwf::obs::GlobalTracer());
  return cwf::obs::RenderProfileText(snapshot) + "\n" +
         cwf::obs::RenderCriticalPathText(paths);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      options.port = std::atoi(argv[++i]);
    } else if (arg == "--scheduler" && i + 1 < argc) {
      options.scheduler = argv[++i];
    } else if (arg == "--duration-s" && i + 1 < argc) {
      options.duration_s = std::atof(argv[++i]);
    } else if (arg == "--repeat" && i + 1 < argc) {
      options.repeat = std::atoi(argv[++i]);
    } else if (arg == "--trace" && i + 1 < argc) {
      options.trace_path = argv[++i];
    } else if (arg == "--bench" && i + 1 < argc) {
      options.bench_path = argv[++i];
    } else if (arg == "--scrape-out" && i + 1 < argc) {
      options.scrape_path = argv[++i];
    } else if (arg == "--serve-ms" && i + 1 < argc) {
      options.serve_ms = std::atoi(argv[++i]);
    } else if (arg == "--profile") {
      options.profile = true;
    } else if (arg == "--profile-out" && i + 1 < argc) {
      options.profile = true;
      options.profile_path = argv[++i];
    } else if (arg == "--no-metrics") {
      // Runtime-disable the metrics sinks (the compiled-out comparison
      // point for the overhead measurement in docs/OBSERVABILITY.md).
      cwf::obs::SetMetricsEnabled(false);
    } else {
      return Usage(argv[0]);
    }
  }
  cwf::lrb::ExperimentOptions experiment;
  if (!ParseScheduler(options.scheduler, &experiment.scheduler) ||
      options.port < 0 || options.port > 65535 || options.repeat < 1 ||
      options.duration_s <= 0) {
    return Usage(argv[0]);
  }
  experiment.workload.duration = cwf::Seconds(
      static_cast<int64_t>(options.duration_s));

  if (!options.trace_path.empty()) {
    cwf::obs::SetTracingEnabled(true);
  }
  if (options.profile) {
    cwf::obs::SetProfilingEnabled(true);
    // Critical-path attribution walks the wave-lineage trace.
    cwf::obs::SetTracingEnabled(true);
  }

  cwf::obs::MetricsServer server;
  const cwf::Status started =
      server.Start(static_cast<uint16_t>(options.port));
  if (!started.ok()) {
    std::fprintf(stderr, "cwf_lrb_serve: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("serving metrics on 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);

  cwf::lrb::ExperimentResult last;
  double last_wall_s = 0;
  for (int run = 0; run < options.repeat; ++run) {
    const auto host_start = std::chrono::steady_clock::now();
    auto result = cwf::lrb::RunLRBExperiment(experiment);
    last_wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_start)
            .count();
    if (!result.ok()) {
      std::fprintf(stderr, "cwf_lrb_serve: run %d failed: %s\n", run,
                   result.status().ToString().c_str());
      return 1;
    }
    last = std::move(result).value();
    if (!last.status.ok()) {
      std::fprintf(stderr, "cwf_lrb_serve: director status: %s\n",
                   last.status.ToString().c_str());
    }
    std::printf("run %d/%d: %zu toll notifications, avg response %.3fs\n",
                run + 1, options.repeat, last.toll_notifications,
                last.toll_avg_response_s);
    std::fflush(stdout);
  }

  int exit_code = 0;
  if (!options.bench_path.empty()) {
    cwf::bench::BenchResult bench = cwf::bench::FromLRB(
        last, "lrb_" + options.scheduler, last_wall_s);
    bench.config["duration_s"] = std::to_string(options.duration_s);
    if (options.profile) {
      bench.host_phase_us =
          cwf::obs::SnapshotProfile(cwf::obs::MetricsRegistry::Global())
              .PhaseTotalsUs();
    }
    const cwf::Status s =
        cwf::bench::WriteBenchJson(bench, options.bench_path);
    if (!s.ok()) {
      std::fprintf(stderr, "cwf_lrb_serve: bench write failed: %s\n",
                   s.ToString().c_str());
      exit_code = 1;
    }
  }
  if (options.profile) {
    const std::string report = RenderProfileReport();
    std::printf("%s", report.c_str());
    std::fflush(stdout);
    if (!options.profile_path.empty()) {
      std::ofstream out(options.profile_path, std::ios::trunc);
      if (!out || !(out << report)) {
        std::fprintf(stderr, "cwf_lrb_serve: profile write failed: %s\n",
                     options.profile_path.c_str());
        exit_code = 1;
      }
    }
  }
  if (!options.trace_path.empty()) {
    const cwf::Status s =
        cwf::obs::GlobalTracer().WriteChromeJson(options.trace_path);
    if (!s.ok()) {
      std::fprintf(stderr, "cwf_lrb_serve: trace write failed: %s\n",
                   s.ToString().c_str());
      exit_code = 1;
    }
  }
  if (!options.scrape_path.empty() &&
      !SelfScrape(server.port(), options.scrape_path)) {
    std::fprintf(stderr, "cwf_lrb_serve: self-scrape failed\n");
    exit_code = 1;
  }
  if (options.serve_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(options.serve_ms));
  }
  server.Stop();
  return exit_code;
}

// cwf_lrb_serve: run the Linear Road benchmark with the observability
// stack attached — metrics server, optional wave tracing, profiling,
// canonical bench JSON.
//
// Starts an obs::MetricsServer, prints the bound port, then runs the LRB
// experiment (repeatedly with --repeat, so cwf_top has changing counters
// to watch). After the run it can write the canonical BENCH_*.json
// (--bench FILE, bench/harness.h schema, including the profiler's
// host-time decomposition when profiling is on), the Chrome trace-event
// JSON for Perfetto (--trace FILE, implies tracing on), and a self-scrape
// of its own /metrics endpoint (--scrape-out FILE) that exercises the
// HTTP path end-to-end for CI. --profile enables the host-time profiler
// (and tracing, which critical-path attribution needs) and prints the
// per-(actor, phase) decomposition plus the top critical-path
// contributors per query type after the run; --profile-out FILE writes
// that report to a file as well. --serve-ms keeps the server up after the
// run for interactive cwf_top sessions.
//
// With --listen the tool switches from the virtual-clock generator to a
// live network front door: an epoll IngestServer (src/net/) feeds position
// reports from real TCP clients into a bounded PushChannel driving the LRB
// workflow under the OS-thread PNCWF director on the real clock. Both the
// newline line protocol and the binary frame protocol are accepted; the
// bound ingest port is printed on stdout for harnesses to scrape. The run
// ends after --duration-s wall seconds (the server stops, the feed channel
// closes, the workflow drains).
//
// Usage:
//   cwf_lrb_serve [--port N] [--scheduler QBS|RR|RB|FIFO|EDF|PNCWF]
//                 [--duration-s S] [--repeat N] [--trace FILE]
//                 [--bench FILE] [--scrape-out FILE] [--serve-ms MS]
//                 [--profile] [--profile-out FILE]
//                 [--listen PORT] [--clients-max N] [--shards N]
//                 [--feed-capacity N] [--access-log FILE]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "core/clock.h"
#include "directors/pncwf_director.h"
#include "harness.h"
#include "lrb/harness.h"
#include "lrb/types.h"
#include "net/ingest_server.h"
#include "obs/export_server.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/telemetry.h"
#include "obs/trace_buffer.h"
#include "stream/push_channel.h"

namespace {

struct CliOptions {
  int port = 0;  // 0 = ephemeral
  std::string scheduler = "QBS";
  double duration_s = 120;
  int repeat = 1;
  std::string trace_path;
  std::string bench_path;
  std::string scrape_path;
  std::string profile_path;
  int serve_ms = 0;
  bool profile = false;
  bool listen = false;
  int listen_port = 0;  // 0 = ephemeral
  int clients_max = 8192;
  int shards = 2;
  int feed_capacity = 4096;
  std::string access_log_path;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--scheduler QBS|RR|RB|FIFO|EDF|PNCWF] "
               "[--duration-s S] [--repeat N] [--trace FILE] [--bench FILE] "
               "[--scrape-out FILE] [--serve-ms MS] [--profile] "
               "[--profile-out FILE] [--listen PORT] [--clients-max N] "
               "[--shards N] [--feed-capacity N] [--access-log FILE]\n",
               argv0);
  return 2;
}

bool ParseScheduler(const std::string& name, cwf::lrb::SchedulerKind* kind) {
  using cwf::lrb::SchedulerKind;
  static const struct {
    const char* name;
    SchedulerKind kind;
  } kTable[] = {
      {"QBS", SchedulerKind::kQBS},   {"RR", SchedulerKind::kRR},
      {"RB", SchedulerKind::kRB},     {"FIFO", SchedulerKind::kFIFO},
      {"EDF", SchedulerKind::kEDF},   {"PNCWF", SchedulerKind::kPNCWF},
  };
  for (const auto& entry : kTable) {
    if (name == entry.name) {
      *kind = entry.kind;
      return true;
    }
  }
  return false;
}

/// Fetches this process's own /metrics over loopback and writes the body to
/// `path` — proves the full TCP exposition path, not just the renderer.
bool SelfScrape(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return false;
  }
  const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
  if (::write(fd, request, sizeof(request) - 1) !=
      static_cast<ssize_t>(sizeof(request) - 1)) {
    ::close(fd);
    return false;
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos ||
      response.rfind("HTTP/1.0 200", 0) != 0) {
    return false;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return false;
  }
  out << response.substr(header_end + 4);
  return static_cast<bool>(out);
}

/// Live network mode: IngestServer -> bounded PushChannel -> LRB workflow
/// under the OS-thread PNCWF director on the real clock. Returns the exit
/// code. Runs for `options.duration_s` wall seconds, then stops the ingest
/// server — which closes the feed channel, so the workflow drains and
/// Run() returns.
int RunListenMode(const CliOptions& options) {
  cwf::RealClock clock;
  auto feed = std::make_shared<cwf::PushChannel>();
  feed->SetCapacity(static_cast<size_t>(options.feed_capacity));
  // Non-fatal boundary check: malformed client tuples land in
  // cwf_ingest_schema_rejects_total instead of reaching the workflow.
  feed->SetExpectedSchema(cwf::lrb::PositionReportType(), "lrb_feed");

  auto app_result = cwf::lrb::BuildLRBApplication(feed);
  if (!app_result.ok()) {
    std::fprintf(stderr, "cwf_lrb_serve: build failed: %s\n",
                 app_result.status().ToString().c_str());
    return 1;
  }
  cwf::lrb::LRBApplication app = std::move(app_result).value();

  cwf::PNCWFOptions pncwf;
  pncwf.mode = cwf::PNCWFMode::kOsThreads;
  cwf::PNCWFDirector director(pncwf);
  const cwf::Status init =
      director.Initialize(app.workflow.get(), &clock, nullptr);
  if (!init.ok()) {
    std::fprintf(stderr, "cwf_lrb_serve: director init failed: %s\n",
                 init.ToString().c_str());
    return 1;
  }

  cwf::net::IngestServer::Options net;
  net.shards = options.shards;
  net.max_connections = static_cast<size_t>(options.clients_max);
  net.access_log_path = options.access_log_path;
  cwf::net::IngestServer ingest(&clock, net);
  ingest.AddChannel(0, feed, "lrb");
  const cwf::Status started =
      ingest.Start(static_cast<uint16_t>(options.listen_port));
  if (!started.ok()) {
    std::fprintf(stderr, "cwf_lrb_serve: ingest start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("ingest listening on 127.0.0.1:%u\n", ingest.port());
  std::fflush(stdout);

  const auto host_start = std::chrono::steady_clock::now();
  std::thread stopper([&] {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options.duration_s));
    ingest.Stop();  // closes the feed so the workflow drains
  });
  // Finite horizon: the LRB time windows hold deadlines up to 60 real
  // seconds in the future, so a Timestamp::Max() run would idle until the
  // last window expires after the feed closes. Two seconds of slack past
  // the feed close drains the in-flight tuples.
  const cwf::Timestamp until =
      clock.Now() +
      cwf::Seconds(static_cast<int64_t>(options.duration_s) + 2);
  const cwf::Status run = director.Run(until);
  stopper.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();
  if (!run.ok()) {
    std::fprintf(stderr, "cwf_lrb_serve: director status: %s\n",
                 run.ToString().c_str());
  }

  const uint64_t tuples = ingest.tuples_received();
  std::printf(
      "live run: %llu tuples from %llu connections (%llu rejected) in "
      "%.1fs; %llu backpressure pauses, %llu parse errors, %llu schema "
      "rejects\n",
      static_cast<unsigned long long>(tuples),
      static_cast<unsigned long long>(ingest.connections_accepted()),
      static_cast<unsigned long long>(ingest.connections_rejected()), wall_s,
      static_cast<unsigned long long>(ingest.backpressure_pauses()),
      static_cast<unsigned long long>(ingest.parse_errors()),
      static_cast<unsigned long long>(ingest.schema_rejects()));
  std::fflush(stdout);

  int exit_code = 0;
  if (!options.bench_path.empty()) {
    cwf::bench::BenchResult bench;
    bench.bench = "lrb_listen";
    bench.wall_s = wall_s;
    bench.throughput_per_s = wall_s > 0 ? tuples / wall_s : 0;
    bench.config["duration_s"] = std::to_string(options.duration_s);
    bench.config["shards"] = std::to_string(options.shards);
    bench.config["clients_max"] = std::to_string(options.clients_max);
    bench.config["feed_capacity"] = std::to_string(options.feed_capacity);
    bench.metrics["tuples_received"] = static_cast<double>(tuples);
    bench.metrics["connections_accepted"] =
        static_cast<double>(ingest.connections_accepted());
    bench.metrics["connections_rejected"] =
        static_cast<double>(ingest.connections_rejected());
    bench.metrics["backpressure_pauses"] =
        static_cast<double>(ingest.backpressure_pauses());
    bench.metrics["parse_errors"] = static_cast<double>(ingest.parse_errors());
    bench.metrics["schema_rejects"] =
        static_cast<double>(ingest.schema_rejects());
    if (options.profile) {
      bench.host_phase_us =
          cwf::obs::SnapshotProfile(cwf::obs::MetricsRegistry::Global())
              .PhaseTotalsUs();
    }
    const cwf::Status s =
        cwf::bench::WriteBenchJson(bench, options.bench_path);
    if (!s.ok()) {
      std::fprintf(stderr, "cwf_lrb_serve: bench write failed: %s\n",
                   s.ToString().c_str());
      exit_code = 1;
    }
  }
  return exit_code;
}

/// The combined profiling report: per-(actor, phase) self-time
/// decomposition followed by the critical-path attribution.
std::string RenderProfileReport() {
  const cwf::obs::ProfileSnapshot snapshot =
      cwf::obs::SnapshotProfile(cwf::obs::MetricsRegistry::Global());
  const cwf::obs::CriticalPathReport paths =
      cwf::obs::ComputeCriticalPaths(cwf::obs::GlobalTracer());
  return cwf::obs::RenderProfileText(snapshot) + "\n" +
         cwf::obs::RenderCriticalPathText(paths);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      options.port = std::atoi(argv[++i]);
    } else if (arg == "--scheduler" && i + 1 < argc) {
      options.scheduler = argv[++i];
    } else if (arg == "--duration-s" && i + 1 < argc) {
      options.duration_s = std::atof(argv[++i]);
    } else if (arg == "--repeat" && i + 1 < argc) {
      options.repeat = std::atoi(argv[++i]);
    } else if (arg == "--trace" && i + 1 < argc) {
      options.trace_path = argv[++i];
    } else if (arg == "--bench" && i + 1 < argc) {
      options.bench_path = argv[++i];
    } else if (arg == "--scrape-out" && i + 1 < argc) {
      options.scrape_path = argv[++i];
    } else if (arg == "--serve-ms" && i + 1 < argc) {
      options.serve_ms = std::atoi(argv[++i]);
    } else if (arg == "--profile") {
      options.profile = true;
    } else if (arg == "--profile-out" && i + 1 < argc) {
      options.profile = true;
      options.profile_path = argv[++i];
    } else if (arg == "--listen" && i + 1 < argc) {
      options.listen = true;
      options.listen_port = std::atoi(argv[++i]);
    } else if (arg == "--clients-max" && i + 1 < argc) {
      options.clients_max = std::atoi(argv[++i]);
    } else if (arg == "--shards" && i + 1 < argc) {
      options.shards = std::atoi(argv[++i]);
    } else if (arg == "--feed-capacity" && i + 1 < argc) {
      options.feed_capacity = std::atoi(argv[++i]);
    } else if (arg == "--access-log" && i + 1 < argc) {
      options.access_log_path = argv[++i];
    } else if (arg == "--no-metrics") {
      // Runtime-disable the metrics sinks (the compiled-out comparison
      // point for the overhead measurement in docs/OBSERVABILITY.md).
      cwf::obs::SetMetricsEnabled(false);
    } else {
      return Usage(argv[0]);
    }
  }
  cwf::lrb::ExperimentOptions experiment;
  if (!ParseScheduler(options.scheduler, &experiment.scheduler) ||
      options.port < 0 || options.port > 65535 || options.repeat < 1 ||
      options.duration_s <= 0 || options.listen_port < 0 ||
      options.listen_port > 65535 || options.clients_max < 1 ||
      options.shards < 1 || options.feed_capacity < 1) {
    return Usage(argv[0]);
  }
  experiment.workload.duration = cwf::Seconds(
      static_cast<int64_t>(options.duration_s));

  if (!options.trace_path.empty()) {
    cwf::obs::SetTracingEnabled(true);
  }
  if (options.profile) {
    cwf::obs::SetProfilingEnabled(true);
    // Critical-path attribution walks the wave-lineage trace.
    cwf::obs::SetTracingEnabled(true);
  }

  cwf::obs::MetricsServer server;
  const cwf::Status started =
      server.Start(static_cast<uint16_t>(options.port));
  if (!started.ok()) {
    std::fprintf(stderr, "cwf_lrb_serve: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("serving metrics on 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);

  int exit_code = 0;
  if (options.listen) {
    exit_code = RunListenMode(options);
  } else {
    cwf::lrb::ExperimentResult last;
    double last_wall_s = 0;
    for (int run = 0; run < options.repeat; ++run) {
      const auto host_start = std::chrono::steady_clock::now();
      auto result = cwf::lrb::RunLRBExperiment(experiment);
      last_wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        host_start)
              .count();
      if (!result.ok()) {
        std::fprintf(stderr, "cwf_lrb_serve: run %d failed: %s\n", run,
                     result.status().ToString().c_str());
        return 1;
      }
      last = std::move(result).value();
      if (!last.status.ok()) {
        std::fprintf(stderr, "cwf_lrb_serve: director status: %s\n",
                     last.status.ToString().c_str());
      }
      std::printf("run %d/%d: %zu toll notifications, avg response %.3fs\n",
                  run + 1, options.repeat, last.toll_notifications,
                  last.toll_avg_response_s);
      std::fflush(stdout);
    }

    if (!options.bench_path.empty()) {
      cwf::bench::BenchResult bench = cwf::bench::FromLRB(
          last, "lrb_" + options.scheduler, last_wall_s);
      bench.config["duration_s"] = std::to_string(options.duration_s);
      if (options.profile) {
        bench.host_phase_us =
            cwf::obs::SnapshotProfile(cwf::obs::MetricsRegistry::Global())
                .PhaseTotalsUs();
      }
      const cwf::Status s =
          cwf::bench::WriteBenchJson(bench, options.bench_path);
      if (!s.ok()) {
        std::fprintf(stderr, "cwf_lrb_serve: bench write failed: %s\n",
                     s.ToString().c_str());
        exit_code = 1;
      }
    }
  }
  if (options.profile) {
    const std::string report = RenderProfileReport();
    std::printf("%s", report.c_str());
    std::fflush(stdout);
    if (!options.profile_path.empty()) {
      std::ofstream out(options.profile_path, std::ios::trunc);
      if (!out || !(out << report)) {
        std::fprintf(stderr, "cwf_lrb_serve: profile write failed: %s\n",
                     options.profile_path.c_str());
        exit_code = 1;
      }
    }
  }
  if (!options.trace_path.empty()) {
    const cwf::Status s =
        cwf::obs::GlobalTracer().WriteChromeJson(options.trace_path);
    if (!s.ok()) {
      std::fprintf(stderr, "cwf_lrb_serve: trace write failed: %s\n",
                   s.ToString().c_str());
      exit_code = 1;
    }
  }
  if (!options.scrape_path.empty() &&
      !SelfScrape(server.port(), options.scrape_path)) {
    std::fprintf(stderr, "cwf_lrb_serve: self-scrape failed\n");
    exit_code = 1;
  }
  if (options.serve_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(options.serve_ms));
  }
  server.Stop();
  return exit_code;
}

// cwf_top: live per-actor statistics viewer for a running workflow.
//
// Polls the /top TSV endpoint of an obs::MetricsServer (see
// src/obs/export_server.h) and renders a refreshing table with the
// cumulative counters plus poll-to-poll rates: firings/s, mean firing cost,
// selectivity (events emitted per event consumed), queue high-water mark,
// and backpressure blocked time. Rates use the server's own monotonic
// time base (the "# ts_us" first line), so client scheduling jitter does
// not skew them.
//
// Usage:
//   cwf_top --port N [--host 127.0.0.1] [--interval-ms 1000] [--once]
//           [--profile]
//
// --once fetches a single sample, prints the table without screen control
// sequences, and exits (CI / scripting mode). --profile additionally polls
// the /profile endpoint and appends a per-actor host-time table (self-time
// per phase plus share of wall) — rows are empty unless the server process
// runs with profiling enabled.

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

struct CliOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  int interval_ms = 1000;
  bool once = false;
  bool profile = false;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port N [--host HOST] [--interval-ms MS] [--once] "
               "[--profile]\n",
               argv0);
  return 2;
}

/// One parsed /top row (cumulative counters since the workflow started).
struct ActorRow {
  std::string actor;
  uint64_t firings = 0;
  double cost_mean_us = 0;
  uint64_t consumed = 0;
  uint64_t emitted = 0;
  uint64_t arrived = 0;
  int64_t queue_hwm = 0;
  uint64_t blocked_us = 0;
  uint64_t decisions = 0;
  uint64_t deferrals = 0;
};

/// The '# ingest' summary comment row emitted when the serving process
/// runs a net::IngestServer (src/obs/export_server.cpp).
struct IngestSummary {
  bool present = false;
  uint64_t live = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t paused = 0;
  uint64_t pauses = 0;
  uint64_t bytes = 0;
  uint64_t parse_errors = 0;
  uint64_t schema_rejects = 0;
  uint64_t frame_errors = 0;
};

/// One '# ingest_channel <name> tuples=N' row.
struct IngestChannelRow {
  std::string name;
  uint64_t tuples = 0;
};

struct Sample {
  int64_t ts_us = 0;
  std::vector<ActorRow> rows;
  IngestSummary ingest;
  std::vector<IngestChannelRow> ingest_channels;
};

/// Issues one HTTP/1.0 GET and returns the response body, or false on any
/// connection/protocol error.
bool HttpGet(const std::string& host, int port, const std::string& path,
             std::string* body, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Fall back to name resolution for non-dotted hosts.
    hostent* he = ::gethostbyname(host.c_str());
    if (he == nullptr || he->h_addr_list[0] == nullptr) {
      ::close(fd);
      *error = "cannot resolve host '" + host + "'";
      return false;
    }
    std::memcpy(&addr.sin_addr, he->h_addr_list[0], sizeof(addr.sin_addr));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    *error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::write(fd, request.data() + off, request.size() - off);
    if (n <= 0) {
      *error = "write failed";
      ::close(fd);
      return false;
    }
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      *error = std::strerror(errno);
      ::close(fd);
      return false;
    }
    if (n == 0) {
      break;
    }
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    *error = "malformed HTTP response";
    return false;
  }
  if (response.find("200") == std::string::npos ||
      response.find("200") > response.find("\r\n")) {
    *error = "non-200 response: " + response.substr(0, response.find("\r\n"));
    return false;
  }
  *body = response.substr(header_end + 4);
  return true;
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  for (;;) {
    const size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

bool ParseTop(const std::string& body, Sample* sample, std::string* error) {
  std::istringstream in(body);
  std::string line;
  // "# ts_us <µs>"
  if (!std::getline(in, line) || line.rfind("# ts_us ", 0) != 0) {
    *error = "missing '# ts_us' time-base line";
    return false;
  }
  sample->ts_us = std::strtoll(line.c_str() + 8, nullptr, 10);
  // Header.
  if (!std::getline(in, line) || line.rfind("actor\t", 0) != 0) {
    *error = "missing TSV header";
    return false;
  }
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      // Comment rows: '# ingest key=value ...' and '# ingest_channel NAME
      // tuples=N' feed the ingest section; unknown comments are skipped so
      // the server can grow new annotations without breaking this client.
      if (line.rfind("# ingest_channel ", 0) == 0) {
        std::istringstream fields(line.substr(std::strlen("# ingest_channel ")));
        IngestChannelRow row;
        std::string kv;
        if (fields >> row.name >> kv && kv.rfind("tuples=", 0) == 0) {
          row.tuples = std::strtoull(kv.c_str() + 7, nullptr, 10);
          sample->ingest_channels.push_back(std::move(row));
        }
      } else if (line.rfind("# ingest ", 0) == 0) {
        sample->ingest.present = true;
        std::istringstream fields(line.substr(std::strlen("# ingest ")));
        std::string kv;
        while (fields >> kv) {
          const size_t eq = kv.find('=');
          if (eq == std::string::npos) {
            continue;
          }
          const std::string key = kv.substr(0, eq);
          const uint64_t value =
              std::strtoull(kv.c_str() + eq + 1, nullptr, 10);
          if (key == "live") {
            sample->ingest.live = value;
          } else if (key == "accepted") {
            sample->ingest.accepted = value;
          } else if (key == "rejected") {
            sample->ingest.rejected = value;
          } else if (key == "paused") {
            sample->ingest.paused = value;
          } else if (key == "pauses") {
            sample->ingest.pauses = value;
          } else if (key == "bytes") {
            sample->ingest.bytes = value;
          } else if (key == "parse_errors") {
            sample->ingest.parse_errors = value;
          } else if (key == "schema_rejects") {
            sample->ingest.schema_rejects = value;
          } else if (key == "frame_errors") {
            sample->ingest.frame_errors = value;
          }
        }
      }
      continue;
    }
    const std::vector<std::string> f = SplitTabs(line);
    if (f.size() != 10) {
      *error = "bad row (want 10 fields): " + line;
      return false;
    }
    ActorRow row;
    row.actor = f[0];
    row.firings = std::strtoull(f[1].c_str(), nullptr, 10);
    row.cost_mean_us = std::strtod(f[2].c_str(), nullptr);
    row.consumed = std::strtoull(f[3].c_str(), nullptr, 10);
    row.emitted = std::strtoull(f[4].c_str(), nullptr, 10);
    row.arrived = std::strtoull(f[5].c_str(), nullptr, 10);
    row.queue_hwm = std::strtoll(f[6].c_str(), nullptr, 10);
    row.blocked_us = std::strtoull(f[7].c_str(), nullptr, 10);
    row.decisions = std::strtoull(f[8].c_str(), nullptr, 10);
    row.deferrals = std::strtoull(f[9].c_str(), nullptr, 10);
    sample->rows.push_back(row);
  }
  return true;
}

/// Renders one refresh of the table. `prev` may be empty (first poll);
/// rates then read as 0.
std::string RenderTable(const Sample& sample, const Sample& prev) {
  std::map<std::string, const ActorRow*> prev_rows;
  for (const ActorRow& row : prev.rows) {
    prev_rows[row.actor] = &row;
  }
  const double dt_s =
      prev.ts_us > 0 ? (sample.ts_us - prev.ts_us) / 1e6 : 0.0;
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-26s %10s %10s %10s %6s %9s %11s %10s\n", "ACTOR",
                "FIRINGS", "FIRINGS/S", "COST_US", "SEL", "QUEUE_HWM",
                "BLOCKED_MS", "DEFERRALS");
  out << line;
  for (const ActorRow& row : sample.rows) {
    double rate = 0;
    if (dt_s > 0) {
      auto it = prev_rows.find(row.actor);
      const uint64_t before = it != prev_rows.end() ? it->second->firings : 0;
      rate = (row.firings - before) / dt_s;
    }
    const double selectivity =
        row.consumed > 0
            ? static_cast<double>(row.emitted) / static_cast<double>(row.consumed)
            : 0.0;
    std::snprintf(line, sizeof(line),
                  "%-26s %10llu %10.1f %10.1f %6.2f %9lld %11.1f %10llu\n",
                  row.actor.c_str(),
                  static_cast<unsigned long long>(row.firings), rate,
                  row.cost_mean_us, selectivity,
                  static_cast<long long>(row.queue_hwm),
                  row.blocked_us / 1000.0,
                  static_cast<unsigned long long>(row.deferrals));
    out << line;
  }
  if (sample.ingest.present) {
    const IngestSummary& ing = sample.ingest;
    std::snprintf(line, sizeof(line),
                  "\nINGEST  conns=%llu (paused %llu, accepted %llu, "
                  "rejected %llu)  pauses=%llu  errors=%llu\n",
                  static_cast<unsigned long long>(ing.live),
                  static_cast<unsigned long long>(ing.paused),
                  static_cast<unsigned long long>(ing.accepted),
                  static_cast<unsigned long long>(ing.rejected),
                  static_cast<unsigned long long>(ing.pauses),
                  static_cast<unsigned long long>(
                      ing.parse_errors + ing.schema_rejects +
                      ing.frame_errors));
    out << line;
    std::map<std::string, uint64_t> prev_tuples;
    for (const IngestChannelRow& row : prev.ingest_channels) {
      prev_tuples[row.name] = row.tuples;
    }
    std::snprintf(line, sizeof(line), "%-26s %14s %14s\n", "CHANNEL",
                  "TUPLES", "TUPLES/S");
    out << line;
    for (const IngestChannelRow& row : sample.ingest_channels) {
      double rate = 0;
      if (dt_s > 0) {
        auto it = prev_tuples.find(row.name);
        const uint64_t before = it != prev_tuples.end() ? it->second : 0;
        rate = (row.tuples - before) / dt_s;
      }
      std::snprintf(line, sizeof(line), "%-26s %14llu %14.1f\n",
                    row.name.c_str(),
                    static_cast<unsigned long long>(row.tuples), rate);
      out << line;
    }
  }
  return out.str();
}

/// Per-actor host-time decomposition pivoted from the /profile TSV: the
/// self-time of the firing phases plus everything else, and the actor's
/// total share of profiled wall time.
struct ProfileRow {
  double prefire_ms = 0;
  double fire_ms = 0;
  double postfire_ms = 0;
  double put_ms = 0;
  double get_ms = 0;
  double blocked_ms = 0;
  double other_ms = 0;
  double total_ms = 0;
};

/// Parses the decomposition section of the /profile body (5-field TSV rows
/// up to the first blank line; the critical-path section after it uses a
/// different, human-oriented format).
bool ParseProfile(const std::string& body,
                  std::map<std::string, ProfileRow>* rows, double* wall_us,
                  std::string* error) {
  std::istringstream in(body);
  std::string line;
  *wall_us = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) {
      break;  // end of the decomposition TSV
    }
    if (line.rfind("# wall_us ", 0) == 0) {
      *wall_us = std::strtod(line.c_str() + 10, nullptr);
      continue;
    }
    if (line[0] == '#') {
      continue;
    }
    if (line.rfind("actor\t", 0) == 0) {
      saw_header = true;
      continue;
    }
    const std::vector<std::string> f = SplitTabs(line);
    if (f.size() != 5) {
      *error = "bad /profile row (want 5 fields): " + line;
      return false;
    }
    const double ms = std::strtod(f[2].c_str(), nullptr) / 1000.0;
    ProfileRow& row = (*rows)[f[0]];
    if (f[1] == "prefire") {
      row.prefire_ms += ms;
    } else if (f[1] == "fire") {
      row.fire_ms += ms;
    } else if (f[1] == "postfire") {
      row.postfire_ms += ms;
    } else if (f[1] == "receiver_put") {
      row.put_ms += ms;
    } else if (f[1] == "receiver_get") {
      row.get_ms += ms;
    } else if (f[1] == "blocked") {
      row.blocked_ms += ms;
    } else {
      row.other_ms += ms;
    }
    row.total_ms += ms;
  }
  if (!saw_header) {
    *error = "missing /profile TSV header";
    return false;
  }
  return true;
}

std::string RenderProfileTable(const std::map<std::string, ProfileRow>& rows,
                               double wall_us) {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-26s %9s %9s %9s %8s %8s %9s %8s %8s\n", "ACTOR(HOST)",
                "PRE_MS", "FIRE_MS", "POST_MS", "PUT_MS", "GET_MS",
                "BLOCK_MS", "OTHER_MS", "PCT_WALL");
  out << line;
  for (const auto& [actor, row] : rows) {
    const double pct =
        wall_us > 0 ? 100.0 * row.total_ms * 1000.0 / wall_us : 0.0;
    std::snprintf(line, sizeof(line),
                  "%-26s %9.1f %9.1f %9.1f %8.1f %8.1f %9.1f %8.1f %8.1f\n",
                  actor.c_str(), row.prefire_ms, row.fire_ms, row.postfire_ms,
                  row.put_ms, row.get_ms, row.blocked_ms, row.other_ms, pct);
    out << line;
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      options.port = std::atoi(argv[++i]);
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      options.interval_ms = std::atoi(argv[++i]);
    } else if (arg == "--once") {
      options.once = true;
    } else if (arg == "--profile") {
      options.profile = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.port <= 0 || options.port > 65535 || options.interval_ms <= 0) {
    return Usage(argv[0]);
  }

  Sample prev;
  for (;;) {
    std::string body;
    std::string error;
    if (!HttpGet(options.host, options.port, "/top", &body, &error)) {
      std::fprintf(stderr, "cwf_top: fetch failed: %s\n", error.c_str());
      return 1;
    }
    Sample sample;
    if (!ParseTop(body, &sample, &error)) {
      std::fprintf(stderr, "cwf_top: bad /top payload: %s\n", error.c_str());
      return 1;
    }
    std::string table = RenderTable(sample, prev);
    if (options.profile) {
      std::string profile_body;
      if (!HttpGet(options.host, options.port, "/profile", &profile_body,
                   &error)) {
        std::fprintf(stderr, "cwf_top: /profile fetch failed: %s\n",
                     error.c_str());
        return 1;
      }
      std::map<std::string, ProfileRow> profile_rows;
      double wall_us = 0;
      if (!ParseProfile(profile_body, &profile_rows, &wall_us, &error)) {
        std::fprintf(stderr, "cwf_top: bad /profile payload: %s\n",
                     error.c_str());
        return 1;
      }
      table += "\n" + RenderProfileTable(profile_rows, wall_us);
    }
    if (options.once) {
      std::fputs(table.c_str(), stdout);
      return 0;
    }
    // Clear screen + home, then the table and a status line.
    std::fputs("\x1b[2J\x1b[H", stdout);
    std::fputs(table.c_str(), stdout);
    std::printf("\n[%s:%d  every %dms  ctrl-c to quit]\n",
                options.host.c_str(), options.port, options.interval_ms);
    std::fflush(stdout);
    prev = sample;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options.interval_ms));
  }
}

// The cwf clang-tidy plugin module: AST-accurate versions of the three
// concurrency lint rules this repository enforces. Load into clang-tidy with
//
//   clang-tidy -load /path/to/libcwf_tidy_module.so \
//       -checks='cwf-raw-mutex,cwf-blocking-under-lock,cwf-assert-side-effects'
//
// The portable scanner next door (cwf_tidy.cpp) enforces the same rules on
// toolchains without clang; this module exists so clang-based CI lanes get
// the precise, type-aware implementation. The check names and suppression
// story (NOLINT comments) are identical in both.

#include "clang-tidy/ClangTidy.h"
#include "clang-tidy/ClangTidyCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Lex/Lexer.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace clang::tidy::cwf {

namespace {

/// True when `loc` is inside the files allowed to touch raw primitives (the
/// lock-order registry itself and the annotation header documenting it).
bool InExemptFile(const SourceManager& sm, SourceLocation loc) {
  const StringRef file = sm.getFilename(sm.getExpansionLoc(loc));
  return file.contains("common/lock_registry") ||
         file.contains("common/thread_annotations");
}

}  // namespace

// ---------------------------------------------------------------------------
// cwf-raw-mutex: no std::mutex / std::lock_guard / std::condition_variable
// outside common/lock_registry. OrderedMutex / ScopedLock /
// std::condition_variable_any participate in lock-order checking and carry
// the thread-safety capability annotations; the raw primitives do not.
// ---------------------------------------------------------------------------

class RawMutexCheck : public ClangTidyCheck {
 public:
  RawMutexCheck(StringRef name, ClangTidyContext* context)
      : ClangTidyCheck(name, context) {}

  void registerMatchers(MatchFinder* finder) override {
    const auto banned = hasAnyName(
        "::std::mutex", "::std::recursive_mutex", "::std::timed_mutex",
        "::std::recursive_timed_mutex", "::std::shared_mutex",
        "::std::shared_timed_mutex", "::std::lock_guard",
        "::std::condition_variable");
    finder->addMatcher(
        typeLoc(loc(qualType(hasDeclaration(namedDecl(banned)))))
            .bind("use"),
        this);
  }

  void check(const MatchFinder::MatchResult& result) override {
    const auto* use = result.Nodes.getNodeAs<TypeLoc>("use");
    const SourceLocation loc = use->getBeginLoc();
    if (loc.isInvalid() || InExemptFile(*result.SourceManager, loc)) {
      return;
    }
    diag(loc,
         "raw standard mutex/guard bypasses lock-order checking and "
         "thread-safety annotation; use cwf::OrderedMutex / cwf::ScopedLock "
         "(std::condition_variable_any waits on OrderedMutex)");
  }
};

// ---------------------------------------------------------------------------
// cwf-blocking-under-lock: no sleeping, thread joins, socket I/O or logging
// while a scoped lock guard is live. Logging acquires the global logging
// mutex; sockets and joins block unboundedly — neither belongs inside an
// engine critical section.
// ---------------------------------------------------------------------------

class BlockingUnderLockCheck : public ClangTidyCheck {
 public:
  BlockingUnderLockCheck(StringRef name, ClangTidyContext* context)
      : ClangTidyCheck(name, context) {}

  void registerMatchers(MatchFinder* finder) override {
    const auto guard_type = hasDeclaration(namedDecl(hasAnyName(
        "::cwf::ScopedLock", "::std::unique_lock", "::std::lock_guard",
        "::std::scoped_lock")));
    const auto guard_decl =
        declStmt(containsDeclaration(0, varDecl(hasType(qualType(anyOf(
                        guard_type, references(qualType(guard_type))))))));
    const auto blocking_callee = callee(functionDecl(hasAnyName(
        "::std::this_thread::sleep_for", "::std::this_thread::sleep_until",
        "::std::thread::join", "accept", "connect", "send", "recv")));
    // A blocking call lexically after a guard declaration in the same
    // compound statement (or any enclosing one).
    finder->addMatcher(
        callExpr(blocking_callee,
                 hasAncestor(compoundStmt(has(guard_decl)).bind("scope")))
            .bind("call"),
        this);
  }

  void check(const MatchFinder::MatchResult& result) override {
    const auto* call = result.Nodes.getNodeAs<CallExpr>("call");
    const auto* scope = result.Nodes.getNodeAs<CompoundStmt>("scope");
    const SourceManager& sm = *result.SourceManager;
    const SourceLocation loc = call->getBeginLoc();
    if (loc.isInvalid() || InExemptFile(sm, loc)) {
      return;
    }
    // Only report when the guard is declared before the call (a guard taken
    // after the blocking call does not cover it).
    for (const Stmt* child : scope->body()) {
      if (const auto* decl_stmt = dyn_cast<DeclStmt>(child)) {
        if (sm.isBeforeInTranslationUnit(decl_stmt->getBeginLoc(), loc)) {
          diag(loc,
               "blocking operation while a lock guard is live; move it "
               "outside the critical section");
          return;
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// cwf-assert-side-effects: no assignments or ++/-- inside CWF_ASSERT /
// CWF_CHECK / CWF_DCHECK conditions — the checked family compiles out in
// release builds, so a side effect there changes behavior between builds.
// ---------------------------------------------------------------------------

class AssertSideEffectsCheck : public ClangTidyCheck {
 public:
  AssertSideEffectsCheck(StringRef name, ClangTidyContext* context)
      : ClangTidyCheck(name, context) {}

  void registerMatchers(MatchFinder* finder) override {
    const auto mutation = anyOf(
        unaryOperator(hasAnyOperatorName("++", "--")),
        binaryOperator(isAssignmentOperator()),
        cxxOperatorCallExpr(isAssignmentOperator()));
    finder->addMatcher(expr(mutation).bind("mutation"), this);
  }

  void check(const MatchFinder::MatchResult& result) override {
    const auto* mutation = result.Nodes.getNodeAs<Expr>("mutation");
    const SourceLocation loc = mutation->getBeginLoc();
    if (loc.isInvalid() || !loc.isMacroID()) {
      return;
    }
    const SourceManager& sm = *result.SourceManager;
    SourceLocation at = loc;
    while (at.isMacroID()) {
      const StringRef macro = Lexer::getImmediateMacroName(
          at, sm, result.Context->getLangOpts());
      if (macro == "CWF_ASSERT" || macro == "CWF_ASSERT_MSG" ||
          macro == "CWF_CHECK" || macro == "CWF_CHECK_MSG" ||
          macro == "CWF_DCHECK" || macro == "CWF_DCHECK_MSG") {
        diag(sm.getExpansionLoc(loc),
             "side effect inside %0 condition; the checked family compiles "
             "out in release builds")
            << macro;
        return;
      }
      at = sm.getImmediateMacroCallerLoc(at);
    }
  }
};

// ---------------------------------------------------------------------------
// Module registration
// ---------------------------------------------------------------------------

class CwfTidyModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories& factories) override {
    factories.registerCheck<RawMutexCheck>("cwf-raw-mutex");
    factories.registerCheck<BlockingUnderLockCheck>("cwf-blocking-under-lock");
    factories.registerCheck<AssertSideEffectsCheck>("cwf-assert-side-effects");
  }
};

static ClangTidyModuleRegistry::Add<CwfTidyModule> X(
    "cwf-module", "Concurrency lint rules of the CONFLuEnCE engine.");

}  // namespace clang::tidy::cwf

// Anchor the registry entry so -load keeps the module alive.
volatile int CwfTidyModuleAnchorSource = 0;

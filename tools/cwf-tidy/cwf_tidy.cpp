// cwf_tidy: portable, dependency-free enforcement of the repository's three
// concurrency lint rules. The same rules ship as a proper clang-tidy plugin
// (CwfTidyModule.cpp next door) for toolchains that have clang; this binary
// is the lane that runs everywhere — it needs nothing but a C++ compiler, so
// check.sh and ctest can gate on it even on gcc-only images.
//
// Checks (names match the clang-tidy module):
//
//   cwf-raw-mutex            std::mutex / std::recursive_mutex /
//                            std::lock_guard / std::condition_variable and
//                            friends outside common/lock_registry. Engine
//                            code must use OrderedMutex / ScopedLock /
//                            std::condition_variable_any so every lock takes
//                            part in lock-order checking and thread-safety
//                            annotation.
//
//   cwf-blocking-under-lock  sleeping, joining, socket I/O or CWF_LOG /
//                            CWF_CLOG while a scoped lock guard is live in
//                            the enclosing scope. Logging takes the global
//                            logging mutex and sockets block indefinitely;
//                            neither belongs inside an engine critical
//                            section.
//
//   cwf-assert-side-effects  assignments or ++/-- inside CWF_ASSERT /
//                            CWF_CHECK / CWF_DCHECK conditions. The DCHECK
//                            family compiles out in release builds, so a
//                            side effect in the condition changes behavior
//                            between build types.
//
//   cwf-stringly-field       Field("...") accessor literals that appear in
//                            no declared schema across the scanned files.
//                            Stringly-typed field reads bypass the schema
//                            pass (CWF70xx) entirely, so a typo like
//                            Field("speeed") only dies at runtime; every
//                            accessed name must match some RecordSchema
//                            builder declaration (.Int("x")/.Double("x")/
//                            .Bool("x")/.Str("x")/Field("x", type)). This
//                            check is scanner-only (no clang-tidy mirror):
//                            it needs the whole file set in one pass to
//                            build the declared-name universe.
//
//   cwf-unbounded-wait       condition-variable waits that can hang on a
//                            spurious wakeup or missed notification:
//                            `cv.wait(lock)` with no predicate, and
//                            `wait_for`/`wait_until` calls whose result is
//                            discarded with no predicate (nothing observes
//                            why the wait ended). Deliberate timed polls
//                            inside re-checking loops carry a
//                            cwf-tidy-allow rationale.
//
// Suppressions, in source:
//   // NOLINT(cwf-raw-mutex)            this line, named check
//   // NOLINTNEXTLINE(cwf-raw-mutex)    next line, named check
//   // cwf-tidy-allow(cwf-raw-mutex): <rationale>   this line, with a
//      required human-readable justification (preferred for durable exempt
//      leaf locks; the bare NOLINT forms are for fixture/test code).
// A NOLINT without a check list suppresses every check on that line.
//
// Usage: cwf_tidy [--check <name>]... <file>...
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Finding {
  std::string file;
  int line = 0;
  std::string check;
  std::string message;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ---------------------------------------------------------------------------
// Source preparation: blank out comments and string/character literals
// (preserving line structure and byte offsets) so the checks never match
// text inside them, and collect the suppression directives comments carry.
// ---------------------------------------------------------------------------

struct PreparedSource {
  /// Original text with comments and literal bodies replaced by spaces.
  std::string code;
  /// line (1-based) -> suppressed check names; "" means all checks.
  std::map<int, std::set<std::string>> suppressed;
};

/// Parse "NOLINT(a, b)" / "NOLINTNEXTLINE(a)" / "cwf-tidy-allow(a): why"
/// inside one comment's text and record the suppressions.
void ParseDirectives(const std::string& comment, int line,
                     std::map<int, std::set<std::string>>* suppressed) {
  struct Directive {
    const char* token;
    int line_offset;
  };
  static const Directive kDirectives[] = {
      {"NOLINTNEXTLINE", 1},  // must precede NOLINT in the scan below
      {"NOLINT", 0},
      {"cwf-tidy-allow", 0},
  };
  size_t pos = 0;
  while (pos < comment.size()) {
    const Directive* hit = nullptr;
    size_t at = std::string::npos;
    for (const Directive& d : kDirectives) {
      const size_t found = comment.find(d.token, pos);
      if (found < at) {
        at = found;
        hit = &d;
      }
    }
    if (hit == nullptr || at == std::string::npos) {
      return;
    }
    size_t after = at + std::strlen(hit->token);
    // "NOLINTNEXTLINE" contains "NOLINT": skip the shorter token when the
    // longer one matched at the same position earlier in the list.
    if (std::strcmp(hit->token, "NOLINT") == 0 &&
        comment.compare(at, std::strlen("NOLINTNEXTLINE"),
                        "NOLINTNEXTLINE") == 0) {
      pos = at + std::strlen("NOLINTNEXTLINE");
      continue;
    }
    std::set<std::string> checks;
    if (after < comment.size() && comment[after] == '(') {
      const size_t close = comment.find(')', after);
      if (close != std::string::npos) {
        std::string list = comment.substr(after + 1, close - after - 1);
        std::istringstream in(list);
        std::string name;
        while (std::getline(in, name, ',')) {
          name.erase(std::remove_if(name.begin(), name.end(), ::isspace),
                     name.end());
          if (!name.empty()) {
            checks.insert(name);
          }
        }
        after = close + 1;
      }
    } else {
      checks.insert("");  // no check list: suppress everything
    }
    const int target = line + hit->line_offset;
    (*suppressed)[target].insert(checks.begin(), checks.end());
    // A rationale comment usually sits on its own line above the exempt
    // declaration, so cwf-tidy-allow also covers the following line.
    if (std::strcmp(hit->token, "cwf-tidy-allow") == 0) {
      (*suppressed)[target + 1].insert(checks.begin(), checks.end());
    }
    pos = after;
  }
}

PreparedSource Prepare(const std::string& text) {
  PreparedSource out;
  out.code = text;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  int line = 1;
  std::string comment;       // text of the comment being consumed
  int comment_line = 1;      // line the current comment started on
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment.clear();
          comment_line = line;
          out.code[i] = out.code[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment.clear();
          comment_line = line;
          out.code[i] = out.code[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          // Raw string literal?
          if (i > 0 && text[i - 1] == 'R' &&
              (i < 2 || !IsIdentChar(text[i - 2]))) {
            size_t dpos = i + 1;
            while (dpos < text.size() && text[dpos] != '(') {
              ++dpos;
            }
            const std::string delim =
                ")" + text.substr(i + 1, dpos - i - 1) + "\"";
            const size_t end = text.find(delim, dpos);
            const size_t stop =
                end == std::string::npos ? text.size() : end + delim.size();
            for (size_t j = i; j < stop; ++j) {
              if (text[j] == '\n') {
                ++line;
              } else {
                out.code[j] = ' ';
              }
            }
            i = stop - 1;
          } else {
            state = State::kString;
            out.code[i] = ' ';
          }
        } else if (c == '\'') {
          state = State::kChar;
          out.code[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          ParseDirectives(comment, comment_line, &out.suppressed);
          state = State::kCode;
        } else {
          comment += c;
          out.code[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          ParseDirectives(comment, comment_line, &out.suppressed);
          state = State::kCode;
          out.code[i] = out.code[i + 1] = ' ';
          ++i;
        } else {
          comment += c;
          if (c != '\n') {
            out.code[i] = ' ';
          }
        }
        break;
      case State::kString:
        if (c == '\\') {
          out.code[i] = ' ';
          if (next != '\0' && next != '\n') {
            out.code[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
          out.code[i] = ' ';
        } else if (c != '\n') {
          out.code[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out.code[i] = ' ';
          if (next != '\0' && next != '\n') {
            out.code[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
          out.code[i] = ' ';
        } else if (c != '\n') {
          out.code[i] = ' ';
        }
        break;
    }
    if (text[i] == '\n') {
      ++line;
    }
  }
  if (state == State::kLineComment || state == State::kBlockComment) {
    ParseDirectives(comment, comment_line, &out.suppressed);
  }
  return out;
}

bool Suppressed(const PreparedSource& src, int line, const std::string& check) {
  auto it = src.suppressed.find(line);
  if (it == src.suppressed.end()) {
    return false;
  }
  return it->second.count("") > 0 || it->second.count(check) > 0;
}

/// Occurrences of `token` in `code` as whole words (no identifier character
/// on either side), reported as byte offsets.
std::vector<size_t> WordOccurrences(const std::string& code,
                                    const std::string& token) {
  std::vector<size_t> out;
  size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= code.size() || !IsIdentChar(code[end]);
    if (left_ok && right_ok) {
      out.push_back(pos);
    }
    pos = end;
  }
  return out;
}

int LineOf(const std::string& code, size_t offset) {
  return 1 + static_cast<int>(std::count(code.begin(), code.begin() + offset,
                                         '\n'));
}

// ---------------------------------------------------------------------------
// cwf-raw-mutex
// ---------------------------------------------------------------------------

void CheckRawMutex(const std::string& path, const PreparedSource& src,
                   std::vector<Finding>* findings) {
  static const char kCheck[] = "cwf-raw-mutex";
  // The lock-order registry implements the primitives; the annotation header
  // documents them.
  if (path.find("common/lock_registry") != std::string::npos ||
      path.find("common/thread_annotations") != std::string::npos) {
    return;
  }
  struct Banned {
    const char* token;
    const char* advice;
  };
  static const Banned kBanned[] = {
      {"std::mutex", "use cwf::OrderedMutex"},
      {"std::recursive_mutex", "use cwf::OrderedRecursiveMutex"},
      {"std::timed_mutex", "use cwf::OrderedMutex"},
      {"std::recursive_timed_mutex", "use cwf::OrderedRecursiveMutex"},
      {"std::shared_mutex", "use cwf::OrderedMutex"},
      {"std::shared_timed_mutex", "use cwf::OrderedMutex"},
      {"std::lock_guard", "use cwf::ScopedLock"},
      {"std::condition_variable",
       "use std::condition_variable_any (waitable on OrderedMutex)"},
  };
  for (const Banned& b : kBanned) {
    for (size_t at : WordOccurrences(src.code, b.token)) {
      const int line = LineOf(src.code, at);
      if (Suppressed(src, line, kCheck)) {
        continue;
      }
      findings->push_back(
          {path, line, kCheck,
           std::string(b.token) +
               " bypasses lock-order checking and thread-safety "
               "annotation; " +
               b.advice});
    }
  }
}

// ---------------------------------------------------------------------------
// cwf-blocking-under-lock
// ---------------------------------------------------------------------------

void CheckBlockingUnderLock(const std::string& path, const PreparedSource& src,
                            std::vector<Finding>* findings) {
  static const char kCheck[] = "cwf-blocking-under-lock";
  struct Marker {
    const char* token;
    bool needs_member_access;  // only flag `.token(` / `->token(` / `::token(`
    const char* what;
  };
  static const Marker kBlocking[] = {
      {"CWF_CLOG", false, "logging takes the global logging mutex"},
      {"CWF_LOG", false, "logging takes the global logging mutex"},
      {"sleep_for", true, "sleeping"},
      {"sleep_until", true, "sleeping"},
      {"join", true, "joining a thread"},
      {"accept", true, "socket I/O"},
      {"connect", true, "socket I/O"},
      {"send", true, "socket I/O"},
      {"recv", true, "socket I/O"},
  };
  static const char* kGuards[] = {
      "ScopedLock",
      "std::unique_lock",
      "std::lock_guard",
      "std::scoped_lock",
  };

  const std::string& code = src.code;
  // Event-merge over the file: brace depth transitions, guard declarations
  // and blocking calls, processed in byte order.
  enum class Kind { kOpen, kClose, kGuard, kBlocking };
  struct Event {
    size_t at;
    Kind kind;
    const Marker* marker = nullptr;
  };
  std::vector<Event> events;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i] == '{') {
      events.push_back({i, Kind::kOpen, nullptr});
    } else if (code[i] == '}') {
      events.push_back({i, Kind::kClose, nullptr});
    }
  }
  for (const char* guard : kGuards) {
    for (size_t at : WordOccurrences(code, guard)) {
      events.push_back({at, Kind::kGuard, nullptr});
    }
  }
  for (const Marker& m : kBlocking) {
    for (size_t at : WordOccurrences(code, m.token)) {
      // Must be a call.
      size_t after = at + std::strlen(m.token);
      while (after < code.size() &&
             std::isspace(static_cast<unsigned char>(code[after]))) {
        ++after;
      }
      if (after >= code.size() || code[after] != '(') {
        continue;
      }
      if (m.needs_member_access) {
        size_t before = at;
        while (before > 0 && std::isspace(static_cast<unsigned char>(
                                 code[before - 1]))) {
          --before;
        }
        const bool member =
            (before >= 1 && code[before - 1] == '.') ||
            (before >= 2 && code[before - 2] == '-' &&
             code[before - 1] == '>') ||
            (before >= 2 && code[before - 2] == ':' &&
             code[before - 1] == ':');
        if (!member) {
          continue;
        }
      }
      events.push_back({at, Kind::kBlocking, &m});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.at < b.at; });

  int depth = 0;
  std::vector<int> guard_depths;  // brace depth each live guard was taken at
  for (const Event& ev : events) {
    switch (ev.kind) {
      case Kind::kOpen:
        ++depth;
        break;
      case Kind::kClose:
        --depth;
        while (!guard_depths.empty() && guard_depths.back() > depth) {
          guard_depths.pop_back();
        }
        break;
      case Kind::kGuard:
        guard_depths.push_back(depth);
        break;
      case Kind::kBlocking: {
        if (guard_depths.empty()) {
          break;
        }
        const int line = LineOf(code, ev.at);
        if (Suppressed(src, line, kCheck)) {
          break;
        }
        findings->push_back(
            {path, line, kCheck,
             std::string(ev.marker->token) +
                 " while a lock guard is live: " + ev.marker->what +
                 " — move it outside the critical section"});
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// cwf-unbounded-wait
// ---------------------------------------------------------------------------

/// Count the top-level comma-separated arguments of the call whose opening
/// '(' is at `open`. Commas inside nested parens, brackets or braces (e.g.
/// a predicate lambda's body) do not count. Returns SIZE_MAX when the call
/// never closes (macro soup): the caller skips it.
size_t CountCallArgs(const std::string& code, size_t open) {
  int paren = 0;
  int other = 0;  // [] and {} nesting
  size_t args = 0;
  bool any = false;
  for (size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '(') {
      ++paren;
    } else if (c == ')') {
      if (--paren == 0) {
        return any ? args + 1 : 0;
      }
    } else if (c == '[' || c == '{') {
      ++other;
    } else if (c == ']' || c == '}') {
      --other;
    } else if (c == ',' && paren == 1 && other == 0) {
      ++args;
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      any = true;
    }
  }
  return static_cast<size_t>(-1);
}

void CheckUnboundedWait(const std::string& path, const PreparedSource& src,
                        std::vector<Finding>* findings) {
  static const char kCheck[] = "cwf-unbounded-wait";
  const std::string& code = src.code;
  struct Wait {
    const char* token;
    bool timed;
  };
  static const Wait kWaits[] = {
      {"wait", false},
      {"wait_for", true},
      {"wait_until", true},
  };
  for (const Wait& w : kWaits) {
    for (size_t at : WordOccurrences(code, w.token)) {
      // Member call only: `cv.wait(` / `cv->wait(`. A `::wait(` is a
      // definition or qualified mention, not a blocking call site.
      size_t before = at;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(code[before - 1]))) {
        --before;
      }
      const bool member = (before >= 1 && code[before - 1] == '.') ||
                          (before >= 2 && code[before - 2] == '-' &&
                           code[before - 1] == '>');
      if (!member) {
        continue;
      }
      size_t open = at + std::strlen(w.token);
      while (open < code.size() &&
             std::isspace(static_cast<unsigned char>(code[open]))) {
        ++open;
      }
      if (open >= code.size() || code[open] != '(') {
        continue;
      }
      const size_t args = CountCallArgs(code, open);
      if (args == static_cast<size_t>(-1)) {
        continue;
      }
      // With a predicate (wait: 2 args; timed waits: 3 args) the wakeup
      // condition is re-checked inside the wait — always safe.
      const size_t no_predicate_args = w.timed ? 2 : 1;
      if (args != no_predicate_args) {
        continue;
      }
      if (w.timed) {
        // A predicate-free timed wait is a poll; it is only unbounded when
        // the caller also discards the result (nothing re-checks why the
        // wait ended). Walk left across the object expression: reaching a
        // statement boundary means the value was dropped.
        size_t scan = before;
        while (scan > 0) {
          const char c = code[scan - 1];
          if (IsIdentChar(c) || std::isspace(static_cast<unsigned char>(c)) ||
              c == '.' || c == ':' || c == '>' || c == '-') {
            --scan;
            continue;
          }
          break;
        }
        const char boundary = scan > 0 ? code[scan - 1] : ';';
        const bool statement_context =
            boundary == ';' || boundary == '{' || boundary == '}';
        const std::string walked = code.substr(scan, at - scan);
        const bool returned =
            walked.find("return") != std::string::npos;
        if (!statement_context || returned) {
          continue;
        }
      }
      const int line = LineOf(code, at);
      if (Suppressed(src, line, kCheck)) {
        continue;
      }
      findings->push_back(
          {path, line, kCheck,
           w.timed
               ? std::string(w.token) +
                     " result discarded and no predicate: a stolen wakeup "
                     "or timeout is indistinguishable from success — check "
                     "the result or re-test the condition in a loop"
               : std::string(w.token) +
                     " without a predicate: spurious wakeups and missed "
                     "notifications hang the waiter — pass a predicate or "
                     "re-check the condition in an enclosing loop"});
    }
  }
}

// ---------------------------------------------------------------------------
// cwf-stringly-field
// ---------------------------------------------------------------------------

/// The first argument of the call whose opening '(' is at `open`, when that
/// argument starts with a string literal. Reads the ORIGINAL text — Prepare
/// blanks literal bodies, which is exactly what makes the prepared offsets
/// safe to carry over (byte positions are preserved).
bool FirstArgLiteral(const std::string& original, size_t open,
                     std::string* literal) {
  size_t i = open + 1;
  while (i < original.size() &&
         std::isspace(static_cast<unsigned char>(original[i]))) {
    ++i;
  }
  if (i >= original.size() || original[i] != '"') {
    return false;
  }
  std::string out;
  for (++i; i < original.size(); ++i) {
    const char c = original[i];
    if (c == '\\' && i + 1 < original.size()) {
      out += original[++i];
    } else if (c == '"') {
      *literal = std::move(out);
      return true;
    } else {
      out += c;
    }
  }
  return false;
}

size_t OpenParenAfter(const std::string& code, size_t at, size_t token_len) {
  size_t i = at + token_len;
  while (i < code.size() &&
         std::isspace(static_cast<unsigned char>(code[i]))) {
    ++i;
  }
  return (i < code.size() && code[i] == '(') ? i : std::string::npos;
}

bool IsMemberAccess(const std::string& code, size_t at) {
  size_t before = at;
  while (before > 0 &&
         std::isspace(static_cast<unsigned char>(code[before - 1]))) {
    --before;
  }
  return (before >= 1 && code[before - 1] == '.') ||
         (before >= 2 && code[before - 2] == '-' && code[before - 1] == '>');
}

/// Pass 1: record every field name the file declares through the
/// RecordSchema builder — `.Int("x")` / `.Double("x")` / `.Bool("x")` /
/// `.Str("x")` and the 2+-argument `Field("x", type, ...)` form. The
/// declared set is global across the scanned file set: schemas commonly
/// live in one file and accessors in another.
void CollectDeclaredFields(const std::string& original,
                           const PreparedSource& src,
                           std::set<std::string>* declared) {
  static const char* kBuilders[] = {"Int", "Double", "Bool", "Str"};
  const std::string& code = src.code;
  for (const char* builder : kBuilders) {
    for (size_t at : WordOccurrences(code, builder)) {
      if (!IsMemberAccess(code, at)) {
        continue;
      }
      const size_t open = OpenParenAfter(code, at, std::strlen(builder));
      if (open == std::string::npos) {
        continue;
      }
      std::string name;
      if (FirstArgLiteral(original, open, &name)) {
        declared->insert(std::move(name));
      }
    }
  }
  for (size_t at : WordOccurrences(code, "Field")) {
    const size_t open = OpenParenAfter(code, at, std::strlen("Field"));
    if (open == std::string::npos) {
      continue;
    }
    const size_t args = CountCallArgs(code, open);
    if (args < 2 || args == static_cast<size_t>(-1)) {
      continue;  // 1-arg Field() is the accessor, handled below
    }
    std::string name;
    if (FirstArgLiteral(original, open, &name)) {
      declared->insert(std::move(name));
    }
  }
}

/// Pass 2: flag 1-argument `x.Field("name")` accessors whose literal is in
/// no declared schema anywhere in the scanned set.
void CheckStringlyField(const std::string& path, const std::string& original,
                        const PreparedSource& src,
                        const std::set<std::string>& declared,
                        std::vector<Finding>* findings) {
  static const char kCheck[] = "cwf-stringly-field";
  const std::string& code = src.code;
  for (size_t at : WordOccurrences(code, "Field")) {
    if (!IsMemberAccess(code, at)) {
      continue;
    }
    const size_t open = OpenParenAfter(code, at, std::strlen("Field"));
    if (open == std::string::npos) {
      continue;
    }
    // In the prepared code the literal body is blanked, so a sole
    // string-literal argument counts as zero args; anything more is the
    // declaration form or a computed name.
    if (CountCallArgs(code, open) != 0) {
      continue;
    }
    std::string name;
    if (!FirstArgLiteral(original, open, &name)) {
      continue;  // name comes through a variable/constant: not checkable
    }
    if (declared.count(name) > 0) {
      continue;
    }
    const int line = LineOf(code, at);
    if (Suppressed(src, line, kCheck)) {
      continue;
    }
    findings->push_back(
        {path, line, kCheck,
         "Field(\"" + name +
             "\") reads a field no declared schema defines; declare it in "
             "a RecordSchema (OutputPort::set_schema) or fix the name — "
             "stringly accesses bypass the CWF70xx schema pass"});
  }
}

// ---------------------------------------------------------------------------
// cwf-assert-side-effects
// ---------------------------------------------------------------------------

/// Whether a condition expression contains an assignment or ++/--.
bool HasSideEffect(const std::string& expr) {
  for (size_t i = 0; i < expr.size(); ++i) {
    const char c = expr[i];
    const char prev = i > 0 ? expr[i - 1] : '\0';
    const char next = i + 1 < expr.size() ? expr[i + 1] : '\0';
    if ((c == '+' && next == '+') || (c == '-' && next == '-')) {
      return true;
    }
    if (c == '=') {
      if (next == '=') {
        ++i;  // "==": skip both
        continue;
      }
      if (prev == '=' || prev == '!' || prev == '<' || prev == '>') {
        continue;  // second char of ==, !=, <=, >=
      }
      // Plain or compound assignment (a = b, a += b, a &= b, ...).
      return true;
    }
  }
  return false;
}

void CheckAssertSideEffects(const std::string& path, const PreparedSource& src,
                            std::vector<Finding>* findings) {
  static const char kCheck[] = "cwf-assert-side-effects";
  static const char* kMacros[] = {
      "CWF_ASSERT", "CWF_ASSERT_MSG", "CWF_CHECK",
      "CWF_CHECK_MSG", "CWF_DCHECK",  "CWF_DCHECK_MSG",
  };
  const std::string& code = src.code;
  for (const char* macro : kMacros) {
    for (size_t at : WordOccurrences(code, macro)) {
      size_t open = at + std::strlen(macro);
      while (open < code.size() &&
             std::isspace(static_cast<unsigned char>(code[open]))) {
        ++open;
      }
      if (open >= code.size() || code[open] != '(') {
        continue;  // the macro's own #define, not an invocation
      }
      // Extract the first top-level argument (the condition).
      int paren = 0;
      size_t end = open;
      for (size_t i = open; i < code.size(); ++i) {
        if (code[i] == '(') {
          ++paren;
        } else if (code[i] == ')') {
          if (--paren == 0) {
            end = i;
            break;
          }
        } else if (code[i] == ',' && paren == 1) {
          end = i;
          break;
        }
      }
      if (end == open) {
        continue;
      }
      const std::string condition = code.substr(open + 1, end - open - 1);
      if (!HasSideEffect(condition)) {
        continue;
      }
      const int line = LineOf(code, at);
      if (Suppressed(src, line, kCheck)) {
        continue;
      }
      findings->push_back(
          {path, line, kCheck,
           std::string(macro) +
               " condition has a side effect (assignment or ++/--); the "
               "checked family compiles out in release builds"});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::set<std::string> enabled;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      if (i + 1 >= argc) {
        std::cerr << "cwf_tidy: --check needs a name\n";
        return 2;
      }
      enabled.insert(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: cwf_tidy [--check <name>]... <file>...\n"
                << "checks: cwf-raw-mutex cwf-blocking-under-lock "
                   "cwf-assert-side-effects cwf-unbounded-wait "
                   "cwf-stringly-field\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "cwf_tidy: unknown flag " << arg << "\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "usage: cwf_tidy [--check <name>]... <file>...\n";
    return 2;
  }
  auto on = [&](const char* name) {
    return enabled.empty() || enabled.count(name) > 0;
  };

  // The stringly-field check needs the declared-name universe before any
  // file can be judged, so all sources are loaded and prepared up front.
  struct Input {
    std::string path;
    std::string original;
    PreparedSource src;
  };
  std::vector<Input> inputs;
  inputs.reserve(files.size());
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "cwf_tidy: cannot read " << path << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    Input input;
    input.path = path;
    input.original = buffer.str();
    input.src = Prepare(input.original);
    inputs.push_back(std::move(input));
  }

  std::set<std::string> declared_fields;
  if (on("cwf-stringly-field")) {
    for (const Input& input : inputs) {
      CollectDeclaredFields(input.original, input.src, &declared_fields);
    }
  }

  std::vector<Finding> findings;
  for (const Input& input : inputs) {
    const std::string& path = input.path;
    const PreparedSource& src = input.src;
    if (on("cwf-raw-mutex")) {
      CheckRawMutex(path, src, &findings);
    }
    if (on("cwf-blocking-under-lock")) {
      CheckBlockingUnderLock(path, src, &findings);
    }
    if (on("cwf-unbounded-wait")) {
      CheckUnboundedWait(path, src, &findings);
    }
    if (on("cwf-assert-side-effects")) {
      CheckAssertSideEffects(path, src, &findings);
    }
    if (on("cwf-stringly-field")) {
      CheckStringlyField(path, input.original, src, declared_fields,
                         &findings);
    }
  }

  for (const Finding& f : findings) {
    std::cerr << f.file << ":" << f.line << ": [" << f.check << "] "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cerr << findings.size() << " finding(s)\n";
    return 1;
  }
  return 0;
}

#!/usr/bin/env bash
# One-command pre-merge gate: builds and tests the full correctness matrix.
#
#   tools/check.sh            # plain + TSan + ASan/UBSan builds, ctest each
#   tools/check.sh --fast     # plain build + ctest only
#
# Each configuration uses its own build directory (build/, build-tsan/,
# build-asan/), mirroring the presets in CMakePresets.json, so incremental
# reruns are cheap. clang-tidy runs over src/ when installed; the gate does
# not fail merely because the tool is absent (CI images without clang still
# get the sanitizer matrix).
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

GENERATOR_ARGS=()
if command -v ninja > /dev/null 2>&1; then
  GENERATOR_ARGS=(-G Ninja)
fi

JOBS="$(nproc 2> /dev/null || echo 2)"

run_matrix_entry() {
  local name="$1" dir="$2"
  shift 2
  echo "==> [${name}] configure"
  cmake -B "${dir}" -S . "${GENERATOR_ARGS[@]}" "$@"
  echo "==> [${name}] build"
  cmake --build "${dir}" -j "${JOBS}"
  echo "==> [${name}] ctest"
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

run_matrix_entry plain build

echo "==> [cwf-tidy] concurrency lint rules (src/ tools/ bench/ examples/)"
find src tools bench examples \( -name '*.cpp' -o -name '*.h' \) -print0 |
  xargs -0 ./build/tools/cwf-tidy/cwf_tidy

echo "==> [cwf-analyze] built-in graph catalog (--strict)"
./build/tools/cwf_analyze --strict

echo "==> [cwf-analyze] liveness classification (--liveness --strict)"
./build/tools/cwf_analyze --liveness --strict

echo "==> [cwf-analyze] channel schema verification (--schemas --strict)"
./build/tools/cwf_analyze --schemas --strict

echo "==> [obs] traced + profiled LRB segment, exposition scrape"
OBS_TMP="$(mktemp -d)"
./build/tools/cwf_lrb_serve --duration-s 60 \
  --bench "${OBS_TMP}/BENCH_lrb_QBS.json" --trace "${OBS_TMP}/trace.json" \
  --scrape-out "${OBS_TMP}/metrics.txt" \
  --profile-out "${OBS_TMP}/profile.txt" > /dev/null
grep -q '^# TYPE cwf_actor_firings_total counter$' "${OBS_TMP}/metrics.txt"
grep -q '"schema_version"' "${OBS_TMP}/BENCH_lrb_QBS.json"
grep -q '"host_phase_us"' "${OBS_TMP}/BENCH_lrb_QBS.json"
grep -q '"traceEvents"' "${OBS_TMP}/trace.json"
grep -q '^# coverage_pct ' "${OBS_TMP}/profile.txt"

echo "==> [perf-smoke] bench_compare vs committed baseline (warn-only)"
./build/tools/cwf_lrb_serve --duration-s 120 \
  --bench "${OBS_TMP}/BENCH_lrb_QBS.json" > /dev/null
./build/tools/bench_compare --warn-only \
  bench/baselines/BENCH_lrb_QBS.json "${OBS_TMP}/BENCH_lrb_QBS.json"
rm -rf "${OBS_TMP}"

echo "==> [ingest] zero-loss sweep under forced backpressure"
ING_TMP="$(mktemp -d)"
./build/bench/bench_ingest_scale --connections 500 --tuples-per-conn 100 \
  --capacity 1024 --staging-limit 64 --consumer-delay-us 300 \
  --consumer-batch 64 --expect-pauses \
  --bench "${ING_TMP}/BENCH_ingest_scale.json"
grep -q '"zero_loss": 1' "${ING_TMP}/BENCH_ingest_scale.json"

echo "==> [ingest] live serve smoke (cwf_lrb_serve --listen, 500 connections)"
./build/tools/cwf_lrb_serve --listen 0 --duration-s 15 --shards 2 \
  --feed-capacity 2048 --clients-max 600 \
  --scrape-out "${ING_TMP}/metrics.txt" > "${ING_TMP}/serve.log" 2>&1 &
ING_SERVE_PID=$!
sleep 2
ING_MPORT="$(awk '/serving metrics/{sub(/.*:/,"",$NF); print $NF}' "${ING_TMP}/serve.log")"
ING_IPORT="$(awk '/ingest listening/{sub(/.*:/,"",$NF); print $NF}' "${ING_TMP}/serve.log")"
./build/bench/bench_ingest_scale --connect "${ING_IPORT}" \
  --metrics "${ING_MPORT}" --connections 500 --tuples-per-conn 10 \
  --sender-threads 8 --verify-timeout-s 12
wait "${ING_SERVE_PID}"
grep -q 'live run: 5000 tuples from 500 connections' "${ING_TMP}/serve.log"
grep -q '^cwf_ingest_accepted_total 500' "${ING_TMP}/metrics.txt"
grep -q '^cwf_ingest_tuples_total{channel="lrb"} 5000' "${ING_TMP}/metrics.txt"
rm -rf "${ING_TMP}"

echo "==> [obs-off] profiler hooks compile out (-DCONFLUENCE_OBS=OFF)"
cmake -B build-noobs -S . "${GENERATOR_ARGS[@]}" -DCONFLUENCE_OBS=OFF > /dev/null
cmake --build build-noobs -j "${JOBS}" --target confluence cwf_lrb_serve \
  bench_compare obs_profile_test > /dev/null
# A compiled-out build must not reference the profile scope machinery from
# the hot-path objects (the classes still exist for tests and tools).
if nm build-noobs/src/CMakeFiles/confluence.dir/core/port.cpp.o 2> /dev/null |
    grep -q ScopedProfilePhase; then
  echo "error: port.cpp still references ScopedProfilePhase with OBS off" >&2
  exit 1
fi

if [[ "${FAST}" == "0" ]]; then
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    run_matrix_entry tsan build-tsan -DCONFLUENCE_SANITIZE=thread

  ASAN_OPTIONS="detect_leaks=1 strict_string_checks=1" \
    UBSAN_OPTIONS="print_stacktrace=1 halt_on_error=1" \
    run_matrix_entry asan-ubsan build-asan -DCONFLUENCE_SANITIZE=address,undefined
fi

if [[ "${FAST}" == "0" ]] && command -v clang++ > /dev/null 2>&1; then
  echo "==> [thread-safety] clang -Werror=thread-safety-analysis (preset: thread-safety)"
  cmake --preset thread-safety "${GENERATOR_ARGS[@]}"
  cmake --build build-ts -j "${JOBS}"
  # The negative-compilation fixtures (tests/analysis/negcompile) register
  # under this configuration: defective locking must fail to compile.
  ctest --test-dir build-ts --output-on-failure -L analysis -j "${JOBS}"
elif [[ "${FAST}" == "0" ]]; then
  echo "==> [thread-safety] clang not installed; skipping (annotations are no-ops under gcc)"
fi

if command -v clang-tidy > /dev/null 2>&1; then
  echo "==> [clang-tidy] src/ (preset: lint)"
  cmake --preset lint > /dev/null
  find src -name '*.cpp' -print0 |
    xargs -0 -n 8 -P "${JOBS}" clang-tidy -p build-lint --quiet
else
  echo "==> [clang-tidy] not installed; skipping (configuration: .clang-tidy)"
fi

echo "==> all checks passed"

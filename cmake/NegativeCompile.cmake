# Negative-compilation test driver (cmake -P script mode).
#
# Compiles SOURCE with COMPILER and FLAGS under -fsyntax-only and asserts
# the outcome named by EXPECT:
#
#   EXPECT=fail  the compile must error — the fixture exercises a defect the
#                static analysis is required to reject (e.g. reading a
#                GUARDED_BY member without its lock under
#                -Werror=thread-safety-analysis)
#   EXPECT=pass  the compile must succeed — the control fixture proving the
#                flags themselves don't reject correct code
#
# Invocation (see tests/CMakeLists.txt):
#   cmake -DCOMPILER=<cxx> -DSOURCE=<file> -DEXPECT=fail|pass
#         "-DFLAGS=<flag;flag;...>" -P cmake/NegativeCompile.cmake

foreach(required COMPILER SOURCE EXPECT)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "NegativeCompile.cmake: ${required} not set")
  endif()
endforeach()

execute_process(
    COMMAND ${COMPILER} ${FLAGS} -fsyntax-only ${SOURCE}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)

if(EXPECT STREQUAL "fail")
  if(rc EQUAL 0)
    message(FATAL_ERROR
        "expected ${SOURCE} to FAIL to compile, but it succeeded — the "
        "static analysis did not catch the defect this fixture exercises")
  endif()
  message(STATUS "rejected as expected (exit ${rc})")
elseif(EXPECT STREQUAL "pass")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "expected ${SOURCE} to compile cleanly, but it failed "
        "(exit ${rc}):\n${out}\n${err}")
  endif()
  message(STATUS "compiled cleanly as expected")
else()
  message(FATAL_ERROR "NegativeCompile.cmake: EXPECT must be fail or pass")
endif()

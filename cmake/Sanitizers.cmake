# Sanitizer build matrix for the concurrency-correctness toolchain.
#
# CONFLUENCE_SANITIZE is a comma- or semicolon-separated list of sanitizers
# to compile the whole tree (src/, tests/, bench/, examples/) with:
#
#   cmake -B build-tsan -S . -DCONFLUENCE_SANITIZE=thread
#   cmake -B build-asan -S . -DCONFLUENCE_SANITIZE=address,undefined
#
# Supported values: thread | address | undefined | leak (and combinations,
# except thread+address which the toolchain forbids). UBSan runs with
# -fno-sanitize-recover so any hit fails the test instead of logging.

set(CONFLUENCE_SANITIZE "" CACHE STRING
    "Sanitizers to build with: comma list of thread|address|undefined|leak")

set(CONFLUENCE_SANITIZE_FLAGS "")
set(CONFLUENCE_SANITIZE_LIST "")

if(CONFLUENCE_SANITIZE)
  string(REPLACE "," ";" CONFLUENCE_SANITIZE_LIST "${CONFLUENCE_SANITIZE}")
  foreach(_san IN LISTS CONFLUENCE_SANITIZE_LIST)
    if(NOT _san MATCHES "^(thread|address|undefined|leak)$")
      message(FATAL_ERROR
          "CONFLUENCE_SANITIZE: unknown sanitizer '${_san}' "
          "(expected thread, address, undefined or leak)")
    endif()
  endforeach()
  if("thread" IN_LIST CONFLUENCE_SANITIZE_LIST AND
     "address" IN_LIST CONFLUENCE_SANITIZE_LIST)
    message(FATAL_ERROR
        "CONFLUENCE_SANITIZE: thread and address sanitizers are mutually "
        "exclusive; build them as separate configurations")
  endif()

  string(REPLACE ";" "," _san_csv "${CONFLUENCE_SANITIZE_LIST}")
  list(APPEND CONFLUENCE_SANITIZE_FLAGS
       "-fsanitize=${_san_csv}" "-fno-omit-frame-pointer" "-g")
  if("undefined" IN_LIST CONFLUENCE_SANITIZE_LIST)
    # Make every UB diagnostic fatal so ctest fails on the first hit.
    list(APPEND CONFLUENCE_SANITIZE_FLAGS "-fno-sanitize-recover=all")
  endif()

  add_compile_options(${CONFLUENCE_SANITIZE_FLAGS})
  add_link_options(${CONFLUENCE_SANITIZE_FLAGS})

  if("thread" IN_LIST CONFLUENCE_SANITIZE_LIST)
    add_compile_definitions(CWF_SANITIZE_THREAD=1)
  endif()
  if("address" IN_LIST CONFLUENCE_SANITIZE_LIST)
    add_compile_definitions(CWF_SANITIZE_ADDRESS=1)
  endif()

  message(STATUS "CONFLuEnCE sanitizers enabled: ${_san_csv}")
endif()
